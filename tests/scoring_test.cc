#include "marketplace/scoring.h"

#include <gtest/gtest.h>

#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table SmallWorkers(uint64_t seed = 3) {
  GeneratorOptions options;
  options.num_workers = 100;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(LinearScoringTest, ScoresInUnitInterval) {
  Table workers = SmallWorkers();
  for (double alpha : {0.0, 0.3, 0.5, 0.7, 1.0}) {
    auto fn = MakeAlphaFunction("f", alpha);
    auto scores = fn->ScoreAll(workers);
    ASSERT_TRUE(scores.ok());
    ASSERT_EQ(scores->size(), workers.num_rows());
    for (double s : *scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(LinearScoringTest, AlphaOneUsesOnlyLanguageTest) {
  Table workers = SmallWorkers();
  auto fn = MakeAlphaFunction("f4", 1.0);
  auto scores = fn->ScoreAll(workers);
  ASSERT_TRUE(scores.ok());
  size_t lt =
      workers.schema().FindIndex(worker_attrs::kLanguageTest).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    double expected = (workers.column(lt).RealAt(row) - 25.0) / 75.0;
    EXPECT_NEAR((*scores)[row], expected, 1e-12);
  }
}

TEST(LinearScoringTest, AlphaZeroUsesOnlyApprovalRate) {
  Table workers = SmallWorkers();
  auto fn = MakeAlphaFunction("f5", 0.0);
  auto scores = fn->ScoreAll(workers);
  ASSERT_TRUE(scores.ok());
  size_t ar =
      workers.schema().FindIndex(worker_attrs::kApprovalRate).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    double expected = (workers.column(ar).RealAt(row) - 25.0) / 75.0;
    EXPECT_NEAR((*scores)[row], expected, 1e-12);
  }
}

TEST(LinearScoringTest, MixedAlphaIsConvexCombination) {
  Table workers = SmallWorkers();
  auto f4 = MakeAlphaFunction("f4", 1.0)->ScoreAll(workers).value();
  auto f5 = MakeAlphaFunction("f5", 0.0)->ScoreAll(workers).value();
  auto f1 = MakeAlphaFunction("f1", 0.5)->ScoreAll(workers).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    EXPECT_NEAR(f1[row], 0.5 * f4[row] + 0.5 * f5[row], 1e-12);
  }
}

TEST(LinearScoringTest, UnknownAttributeFails) {
  Table workers = SmallWorkers();
  LinearScoringFunction fn("bad", {{"Nonexistent", 1.0}});
  EXPECT_EQ(fn.ScoreAll(workers).status().code(), StatusCode::kNotFound);
}

TEST(LinearScoringTest, CategoricalAttributeFails) {
  Table workers = SmallWorkers();
  LinearScoringFunction fn("bad", {{worker_attrs::kGender, 1.0}});
  EXPECT_EQ(fn.ScoreAll(workers).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LinearScoringTest, NegativeWeightFails) {
  Table workers = SmallWorkers();
  LinearScoringFunction fn("bad", {{worker_attrs::kLanguageTest, -0.5}});
  EXPECT_EQ(fn.ScoreAll(workers).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LinearScoringTest, ZeroWeightAttributeIgnored) {
  Table workers = SmallWorkers();
  // Zero weight on a categorical attribute would fail if not skipped.
  LinearScoringFunction fn("ok", {{worker_attrs::kLanguageTest, 1.0},
                                  {worker_attrs::kGender, 0.0}});
  EXPECT_TRUE(fn.ScoreAll(workers).ok());
}

TEST(LinearScoringTest, DeterministicAcrossCalls) {
  Table workers = SmallWorkers();
  auto fn = MakeAlphaFunction("f1", 0.5);
  auto a = fn->ScoreAll(workers).value();
  auto b = fn->ScoreAll(workers).value();
  EXPECT_EQ(a, b);
}

TEST(PaperFunctionsTest, FiveFunctionsWithExpectedNames) {
  auto fns = MakePaperRandomFunctions();
  ASSERT_EQ(fns.size(), 5u);
  EXPECT_NE(fns[0]->Name().find("f1"), std::string::npos);
  EXPECT_NE(fns[3]->Name().find("alpha=1.0"), std::string::npos);
  EXPECT_NE(fns[4]->Name().find("alpha=0.0"), std::string::npos);
}

TEST(PaperFunctionsTest, EmptyTableYieldsNoScores) {
  auto schema = MakePaperWorkerSchema();
  ASSERT_TRUE(schema.ok());
  Table empty(*schema);
  auto scores = MakeAlphaFunction("f1", 0.5)->ScoreAll(empty);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->empty());
}

}  // namespace
}  // namespace fairrank
