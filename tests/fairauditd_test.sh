#!/bin/sh
# End-to-end smoke test of the fairauditd server. First argument: path to
# the fairauditd binary. Boots the daemon on an ephemeral port, fires
# concurrent smoke requests (including an over-budget one), exercises
# process-level admission control, and checks the SIGTERM drain exits 0
# with a final stats flush. Uses the binary's own --fetch client mode, so
# the test has no curl dependency.
set -eu

FAIRAUDITD="$1"
WORKDIR="$(mktemp -d)"
DPID=""
trap 'rm -rf "$WORKDIR"; [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# Unknown flags must be rejected before any serving starts.
if "$FAIRAUDITD" --worker 10 > /dev/null 2>&1; then
  fail "unknown flag --worker should be rejected"
fi
"$FAIRAUDITD" --worker 10 2>&1 | grep -q "unknown flag --worker" \
  || fail "unknown flag named in error"

start_daemon() {
  # $1: log file, rest: extra flags.
  LOG="$1"
  shift
  "$FAIRAUDITD" --workers 300 --seed 5 --port 0 --threads 2 "$@" \
    > "$LOG" 2>&1 &
  DPID=$!
  # Wait for the listening line (the bound ephemeral port is printed there).
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "listening on" "$LOG" 2>/dev/null; then break; fi
    kill -0 "$DPID" 2>/dev/null || fail "daemon died during startup: $(cat "$LOG")"
    sleep 0.1
    i=$((i + 1))
  done
  grep -q "listening on" "$LOG" || fail "daemon never started: $(cat "$LOG")"
  PORT=$(grep "listening on" "$LOG" | head -1 \
    | sed 's/.*listening on [^:]*:\([0-9]*\).*/\1/')
  [ -n "$PORT" ] || fail "could not parse port from: $(cat "$LOG")"
}

fetch() {
  "$FAIRAUDITD" --fetch "$1" --port "$PORT" --fetch-timeout-ms 30000
}

# --- Daemon 1: unlimited budgets, concurrent smoke traffic. ---------------
start_daemon "$WORKDIR/d1.log"

fetch "/healthz" | grep -q "status 200" || fail "healthz"

# Concurrent smoke requests: two audits, a suite, and a stats read at once.
fetch "/audit?function=f6&algorithm=unbalanced&seed=3" \
  > "$WORKDIR/a1.out" 2>&1 &
P1=$!
fetch "/audit?function=alpha:0.5&algorithm=balanced" \
  > "$WORKDIR/a2.out" 2>&1 &
P2=$!
fetch "/suite?functions=alpha:0.25,f6&algorithms=unbalanced,balanced" \
  > "$WORKDIR/s1.out" 2>&1 &
P3=$!
fetch "/stats" > "$WORKDIR/st.out" 2>&1 &
P4=$!
wait $P1 $P2 $P3 $P4 || fail "a concurrent smoke request failed"
grep -q "status 200" "$WORKDIR/a1.out" || fail "concurrent audit 1"
grep -q '"unfairness"' "$WORKDIR/a1.out" || fail "audit 1 body"
grep -q "status 200" "$WORKDIR/a2.out" || fail "concurrent audit 2"
grep -q "status 200" "$WORKDIR/s1.out" || fail "concurrent suite"
grep -q '"cells"' "$WORKDIR/s1.out" || fail "suite body"
grep -q "status 200" "$WORKDIR/st.out" || fail "concurrent stats"

# Over-budget request: a per-request node budget on the exhaustive search
# must degrade to a truncated 200, never an error or a hang.
fetch "/audit?function=f6&algorithm=exhaustive&max-nodes=50" \
  > "$WORKDIR/over.out"
grep -q "status 200" "$WORKDIR/over.out" || fail "over-budget status"
grep -q '"truncated":true' "$WORKDIR/over.out" || fail "over-budget truncated"
grep -q '"exhaustion_reason":"node-budget"' "$WORKDIR/over.out" \
  || fail "over-budget reason"

# A misspelled query parameter fails structurally, like a misspelled flag.
fetch "/audit?function=f6&max-node=5" > "$WORKDIR/typo.out"
grep -q "status 400" "$WORKDIR/typo.out" || fail "typo status"
grep -q "unknown flag" "$WORKDIR/typo.out" || fail "typo message"

# Keep-alive round trip: three fetches over ONE connection. "connects 1"
# proves the daemon honored keep-alive; identical bodies prove the second
# and third answers were replayed from the response cache bit-identically
# (wall-clock fields included).
"$FAIRAUDITD" --fetch "/audit?function=f6&algorithm=unbalanced&seed=3" \
  --port "$PORT" --fetch-count 3 --fetch-timeout-ms 30000 \
  > "$WORKDIR/ka.out" || fail "keep-alive fetch"
[ "$(grep -c "status 200" "$WORKDIR/ka.out")" -eq 3 ] \
  || fail "keep-alive statuses"
grep -q "connects 1" "$WORKDIR/ka.out" || fail "keep-alive reused connection"
[ "$(grep '"unfairness"' "$WORKDIR/ka.out" | sort -u | wc -l)" -eq 1 ] \
  || fail "cached keep-alive bodies not identical"

# /metrics serves the Prometheus exposition: server request families, the
# per-endpoint latency summary, and the process-registry pipeline counters
# driven by the audits above.
fetch "/metrics" > "$WORKDIR/metrics.out"
grep -q "status 200" "$WORKDIR/metrics.out" || fail "metrics status"
grep -q 'fairrank_http_requests_total{endpoint="/audit"}' \
  "$WORKDIR/metrics.out" || fail "metrics request counter"
grep -q 'fairrank_http_request_duration_seconds{endpoint="/audit",quantile="0.5"}' \
  "$WORKDIR/metrics.out" || fail "metrics latency summary"
grep -q 'fairrank_http_shed_total{reason="total"}' "$WORKDIR/metrics.out" \
  || fail "metrics shed counter"
grep -q '^fairrank_audits_total [1-9]' "$WORKDIR/metrics.out" \
  || fail "metrics audits counter"
grep -q 'fairrank_pipeline_emd_computations_total' "$WORKDIR/metrics.out" \
  || fail "metrics pipeline counter"
grep -q 'fairrank_response_cache_events_total' "$WORKDIR/metrics.out" \
  || fail "metrics response cache events"

# /stats shows the served endpoints, the budget rollup, and the new
# keep-alive + response-cache counters.
fetch "/stats" > "$WORKDIR/stats.out"
grep -q '"/audit"' "$WORKDIR/stats.out" || fail "stats endpoints"
grep -q '"nodes_used"' "$WORKDIR/stats.out" || fail "stats budget"
grep -q '"keep_alive_reuses"' "$WORKDIR/stats.out" || fail "stats keep-alive"
grep -q '"response_cache"' "$WORKDIR/stats.out" || fail "stats cache block"
grep -q '"response_cache":{"hits":0' "$WORKDIR/stats.out" \
  && fail "response cache never hit" || true

# Malformed-request smoke: raw-socket garbage must come back as structured
# errors (or a clean close) and never wedge or kill the daemon. Uses
# python3 raw sockets because the --fetch client only speaks well-formed
# HTTP; skipped silently where python3 is absent.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$PORT" << 'PYEOF' > "$WORKDIR/malformed.out" 2>&1 \
    || fail "malformed-request smoke: $(cat "$WORKDIR/malformed.out")"
import socket
import sys

port = int(sys.argv[1])


def exchange(payload, shutdown_early=False):
    """Sends raw bytes; returns whatever the server answers ('' on close)."""
    s = socket.create_connection(("127.0.0.1", port), timeout=10)
    try:
        s.sendall(payload)
        if shutdown_early:
            # Premature close: advertise a body, send half, walk away.
            s.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            c = s.recv(4096)
            if not c:
                break
            chunks.append(c)
        return b"".join(chunks)
    finally:
        s.close()


def expect(name, reply, status):
    if not reply.startswith(b"HTTP/1.1 " + status):
        raise SystemExit("%s: want %s, got %r" % (name, status, reply[:120]))


# Binary garbage instead of a request line.
expect("garbage", exchange(b"\x00\xff\xfe\x01garbage\r\n\r\n"), b"400")
# An oversized header blows the head-size limit: 431, not a buffer issue.
big = b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 9000 + b"\r\n\r\n"
expect("oversized-header", exchange(big), b"431")
# Conflicting Content-Length values are request smuggling; hard 400.
dup = (b"POST /audit HTTP/1.1\r\nContent-Length: 4\r\n"
       b"Content-Length: 5\r\n\r\nabcd")
expect("dup-content-length", exchange(dup), b"400")
# Declared 100-byte body, sent 3 bytes, closed: server must not hang and
# may answer 400 or just close the desynchronized connection.
partial = b"POST /audit HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc"
reply = exchange(partial, shutdown_early=True)
if reply and not reply.startswith(b"HTTP/1.1 4"):
    raise SystemExit("premature-close: got %r" % reply[:120])
# A client-supplied X-Request-Id must come back verbatim on the response.
echoed = exchange(b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                  b"X-Request-Id: smoke-echo-1\r\nConnection: close\r\n\r\n")
expect("request-id", echoed, b"200")
if b"X-Request-Id: smoke-echo-1" not in echoed:
    raise SystemExit("request-id not echoed: %r" % echoed[:200])
# Without one, the server mints a printable req-... id.
minted = exchange(b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                  b"Connection: close\r\n\r\n")
if b"X-Request-Id: req-" not in minted:
    raise SystemExit("request-id not minted: %r" % minted[:200])
print("malformed smoke ok")
PYEOF
  grep -q "malformed smoke ok" "$WORKDIR/malformed.out" \
    || fail "malformed smoke did not complete"
  # The daemon took four hostile connections and must still be healthy.
  fetch "/healthz" | grep -q "status 200" || fail "healthz after malformed"
fi

# SIGTERM: graceful drain, exit 0, final stats flushed.
kill -TERM "$DPID"
RC=0
wait "$DPID" || RC=$?
[ "$RC" -eq 0 ] || fail "daemon exit code after SIGTERM (got $RC)"
grep -q "drained (signal 15)" "$WORKDIR/d1.log" || fail "drain log line"
grep -q "final_stats" "$WORKDIR/d1.log" || fail "final stats flush"
DPID=""

# --- Daemon 2: tiny process-wide budget => admission control. -------------
start_daemon "$WORKDIR/d2.log" --max-nodes 10 --retry-after-ms 500

# First audit is admitted and truncates when the process budget trips.
fetch "/audit?function=f6&algorithm=unbalanced" > "$WORKDIR/b1.out"
grep -q "status 200" "$WORKDIR/b1.out" || fail "budget first audit status"
grep -q '"truncated":true' "$WORKDIR/b1.out" || fail "budget first truncated"

# Every later audit is shed before any work runs: 503 + retry hint.
fetch "/audit?function=f6&algorithm=unbalanced" > "$WORKDIR/b2.out"
grep -q "status 503" "$WORKDIR/b2.out" || fail "budget shed status"
grep -q "budget_exhausted" "$WORKDIR/b2.out" || fail "budget shed reason"
grep -q '"retry_after_ms":500' "$WORKDIR/b2.out" || fail "budget retry hint"

# /healthz stays up; the aggregate node spend stayed near the cap.
fetch "/healthz" | grep -q "status 200" || fail "healthz after budget"
fetch "/stats" > "$WORKDIR/b3.out"
grep -q '"max_nodes":10' "$WORKDIR/b3.out" || fail "stats max_nodes"
NODES=$(grep -o '"nodes_used":[0-9]*' "$WORKDIR/b3.out" | head -1 | cut -d: -f2)
[ "$NODES" -le 74 ] || fail "aggregate nodes bounded (got $NODES)"

kill -TERM "$DPID"
RC=0
wait "$DPID" || RC=$?
[ "$RC" -eq 0 ] || fail "second daemon exit code (got $RC)"
DPID=""

# --- Daemon 3: access logs + slow-request span dumps. ---------------------
start_daemon "$WORKDIR/d3.log" --access-log --slow-request-ms 1

# A deadline-bounded exhaustive audit runs ~50 ms — past the 1 ms slow
# threshold, so the daemon must log both the JSON access line and the span
# tree of the slow request.
fetch "/audit?function=f6&algorithm=exhaustive&timeout-ms=50" \
  > "$WORKDIR/slow.out"
grep -q "status 200" "$WORKDIR/slow.out" || fail "slow audit status"

kill -TERM "$DPID"
RC=0
wait "$DPID" || RC=$?
[ "$RC" -eq 0 ] || fail "third daemon exit code (got $RC)"
DPID=""

grep -q '"path":"/audit"' "$WORKDIR/d3.log" || fail "access log line"
grep -q '"request_id":"req-' "$WORKDIR/d3.log" || fail "access log request id"
grep -q '"trace_id":"' "$WORKDIR/d3.log" || fail "access log trace id"
grep -q "slow request req-" "$WORKDIR/d3.log" || fail "slow request dump"
grep -q -- "- audit " "$WORKDIR/d3.log" || fail "slow dump span tree root"
grep -q -- "  - search " "$WORKDIR/d3.log" || fail "slow dump child span"

echo "fairauditd_test: server smoke OK"
