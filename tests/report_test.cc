#include "fairness/report.h"

#include <gtest/gtest.h>

#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"

namespace fairrank {
namespace {

AuditResult SampleResult() {
  // Shared across tests; destroyed at process exit.
  static Table& workers = []() -> Table& {
    GeneratorOptions gen;
    gen.num_workers = 120;
    gen.seed = 2;
    static Table table = GenerateWorkers(gen).value();
    return table;
  }();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  return auditor.Audit(*MakeF6(8), options).value();
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"much-longer-name", "22"});
  std::string out = table.ToString();
  // Both rows end with the value aligned past the widest name.
  EXPECT_NE(out.find("short             1"), std::string::npos);
  EXPECT_NE(out.find("much-longer-name  22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, NoHeaderNoRule) {
  TextTable table;
  table.AddRow({"a", "b"});
  std::string out = table.ToString();
  EXPECT_EQ(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("a  b"), std::string::npos);
}

TEST(TextTableTest, RaggedRowsHandled) {
  TextTable table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  table.AddRow({"1", "2", "3"});
  EXPECT_FALSE(table.ToString().empty());
}

TEST(FormatAuditReportTest, ContainsHeadlineFields) {
  AuditResult result = SampleResult();
  std::string report = FormatAuditReport(result);
  EXPECT_NE(report.find("balanced"), std::string::npos);
  EXPECT_NE(report.find("f6"), std::string::npos);
  EXPECT_NE(report.find("unfairness"), std::string::npos);
  EXPECT_NE(report.find("Gender=Male"), std::string::npos);
  EXPECT_NE(report.find("Gender=Female"), std::string::npos);
}

TEST(FormatAuditReportTest, HistogramsOptIn) {
  AuditResult result = SampleResult();
  ReportOptions without;
  ReportOptions with;
  with.include_histograms = true;
  EXPECT_EQ(FormatAuditReport(result, without).find("#"), std::string::npos);
  EXPECT_NE(FormatAuditReport(result, with).find("#"), std::string::npos);
}

TEST(FormatAuditReportTest, MaxPartitionsTruncates) {
  AuditResult result = SampleResult();
  ReportOptions options;
  options.max_partitions = 1;
  std::string report = FormatAuditReport(result, options);
  EXPECT_NE(report.find("1 more partitions"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(FormatAuditJsonTest, WellFormedShape) {
  AuditResult result = SampleResult();
  std::string json = FormatAuditJson(result);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"algorithm\":\"balanced\""), std::string::npos);
  EXPECT_NE(json.find("\"unfairness\":"), std::string::npos);
  EXPECT_NE(json.find("\"partitions\":["), std::string::npos);
  EXPECT_NE(json.find("\"histogram\":["), std::string::npos);
  // Balanced braces and brackets.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(FormatAuditJsonTest, PartitionCountMatches) {
  AuditResult result = SampleResult();
  std::string json = FormatAuditJson(result);
  size_t labels = 0;
  size_t pos = 0;
  while ((pos = json.find("\"label\":", pos)) != std::string::npos) {
    ++labels;
    pos += 8;
  }
  EXPECT_EQ(labels, result.partitions.size());
}

TEST(FormatAuditCsvRowTest, FieldOrder) {
  AuditResult result = SampleResult();
  std::string row = FormatAuditCsvRow(result);
  EXPECT_EQ(row.find("balanced,"), 0u);
  // algorithm,function,unfairness,seconds,partitions,attrs = 6 fields.
  int commas = 0;
  for (char c : row) commas += (c == ',') ? 1 : 0;
  EXPECT_EQ(commas, 5);
  EXPECT_NE(row.find("Gender"), std::string::npos);
}


TEST(FormatAuditCsvRowTest, EscapesHostileFields) {
  AuditResult result = SampleResult();
  result.scoring_function = "f,1\"x";
  std::string row = FormatAuditCsvRow(result);
  EXPECT_NE(row.find("\"f,1\"\"x\""), std::string::npos) << row;
  // The quoted comma must not change the field count.
  std::string unquoted;
  bool in_quotes = false;
  for (char c : row) {
    if (c == '\"') in_quotes = !in_quotes;
    if (!in_quotes) unquoted += c;
  }
  int commas = 0;
  for (char c : unquoted) commas += (c == ',') ? 1 : 0;
  EXPECT_EQ(commas, 5);
}

}  // namespace
}  // namespace fairrank
