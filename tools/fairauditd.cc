// fairauditd — long-running audit service over the fairrank library.
//
// Serve mode (default):
//   fairauditd --input workers.csv[,more.csv...] [--port 8080] [--host IP]
//              [--threads 4] [--max-inflight 4] [--queue-depth 16]
//              [--timeout-ceiling-ms 10000] [--default-timeout-ms 0]
//              [--max-nodes 0] [--max-memory-mb 0] [--retry-after-ms 250]
//              [--drain-ms 2000] [--io-timeout-ms 5000]
//              [--no-keep-alive] [--keep-alive-idle-ms 5000]
//              [--max-requests-per-conn 100] [--response-cache-mb 8]
//              [--request-threads 1] [--slow-request-ms 0] [--access-log]
//   fairauditd --workers 2000 [--seed 7] ...        (synthetic dataset)
//
// Datasets load once at startup into immutable shared tables; each request
// audits against them concurrently. `--max-nodes` / `--max-memory-mb` are
// *process-wide aggregate* budgets: every request's budget chains to them,
// and once they run dry the server sheds audit work with 503 +
// retry_after_ms instead of growing without bound. `--port 0` binds an
// ephemeral port; the bound port is printed on the "listening" line.
//
// Endpoints: /audit and /suite take the fairaudit CLI's flags as query (or
// POST form) parameters plus `dataset=<name>`; /healthz, /stats, and
// /metrics (Prometheus text) are always served, even while draining.
// `--access-log` prints one JSON line per request; `--slow-request-ms N`
// traces /audit//suite requests and dumps the span tree of any slower than
// N ms. SIGINT/SIGTERM start a graceful
// drain: stop accepting, wait up to --drain-ms for in-flight requests, then
// cancel cooperatively (stragglers return truncated best-so-far bodies),
// flush a final stats line, and exit 0.
//
// Client mode (smoke tests, no curl dependency):
//   fairauditd --fetch "/audit?function=f6" --port 8080 [--host IP]
//              [--method GET|POST] [--body "a=1&b=2"] [--fetch-timeout-ms N]
//              [--fetch-count 1]
// prints "status <code>" then the body, and exits 0 for any well-formed
// HTTP response (the caller asserts on the printed status/body).
// --fetch-count N > 1 issues the request N times over ONE kept-alive
// connection (HttpClient), printing each response and finally
// "connects <n>" — n stays 1 when the server honored keep-alive.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/shutdown.h"
#include "common/str_util.h"
#include "data/csv.h"
#include "marketplace/generator.h"
#include "marketplace/worker.h"
#include "server/client.h"
#include "server/server.h"

namespace fairrank {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "fairauditd: %s\n", status.ToString().c_str());
  return 1;
}

const std::vector<std::string>& KnownFlags() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      // Serve mode.
      "input", "workers", "seed", "port", "host", "threads", "max-inflight",
      "queue-depth", "timeout-ceiling-ms", "default-timeout-ms", "max-nodes",
      "max-memory-mb", "retry-after-ms", "drain-ms", "io-timeout-ms",
      "no-keep-alive", "keep-alive-idle-ms", "max-requests-per-conn",
      "response-cache-mb", "request-threads", "slow-request-ms", "access-log",
      // Client mode.
      "fetch", "method", "body", "fetch-timeout-ms", "fetch-count",
  };
  return *names;
}

/// "data/workers.csv" -> "workers": the dataset name requests use.
std::string DatasetName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base;
}

StatusOr<int64_t> NonNegativeInt(const FlagParser& flags,
                                 const std::string& name, int64_t fallback) {
  FAIRRANK_ASSIGN_OR_RETURN(int64_t value, flags.GetInt(name, fallback));
  if (value < 0) {
    return Status::InvalidArgument("--" + name + " must be >= 0");
  }
  return value;
}

int RunFetch(const FlagParser& flags) {
  auto port = flags.GetInt("port", 8080);
  if (!port.ok()) return Fail(port.status());
  auto timeout = flags.GetInt("fetch-timeout-ms", 30000);
  if (!timeout.ok()) return Fail(timeout.status());
  auto count = flags.GetInt("fetch-count", 1);
  if (!count.ok()) return Fail(count.status());
  if (*count < 1) {
    return Fail(Status::InvalidArgument("--fetch-count must be >= 1"));
  }
  std::string host = flags.GetString("host", "127.0.0.1");
  std::string method = flags.GetString("method", "GET");
  std::string target = flags.GetString("fetch", "/healthz");
  std::string body = flags.GetString("body", "");

  if (*count == 1) {
    StatusOr<HttpFetchResult> result = HttpFetch(
        host, static_cast<int>(*port), method, target, body, *timeout);
    if (!result.ok()) return Fail(result.status());
    std::printf("status %d\n%s\n", result->status_code, result->body.c_str());
    return 0;
  }

  // Repeated fetches ride one kept-alive connection; the trailing
  // "connects" line exposes how many TCP connects that actually took.
  HttpClient client(host, static_cast<int>(*port));
  for (int64_t i = 0; i < *count; ++i) {
    StatusOr<HttpFetchResult> result =
        client.Fetch(method, target, body, *timeout);
    if (!result.ok()) return Fail(result.status());
    std::printf("status %d\n%s\n", result->status_code, result->body.c_str());
  }
  std::printf("connects %llu\n",
              static_cast<unsigned long long>(client.connects()));
  return 0;
}

StatusOr<std::map<std::string, std::unique_ptr<Table>>> LoadDatasets(
    const FlagParser& flags, std::string* default_name) {
  std::map<std::string, std::unique_ptr<Table>> tables;
  std::string input = flags.GetString("input", "");
  if (!input.empty()) {
    FAIRRANK_ASSIGN_OR_RETURN(Schema schema, MakePaperWorkerSchema());
    for (const std::string& raw : Split(input, ',')) {
      std::string path(Trim(raw));
      FAIRRANK_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path, schema));
      std::string name = DatasetName(path);
      if (default_name->empty()) *default_name = name;
      if (tables.count(name) != 0) {
        return Status::InvalidArgument("duplicate dataset name '" + name +
                                       "' from --input");
      }
      tables[name] = std::make_unique<Table>(std::move(table));
    }
    return tables;
  }
  FAIRRANK_ASSIGN_OR_RETURN(int64_t workers,
                            NonNegativeInt(flags, "workers", 0));
  if (workers == 0) {
    return Status::InvalidArgument(
        "pass --input <csv>[,<csv>...] or --workers <n> (synthetic data)");
  }
  GeneratorOptions options;
  options.num_workers = static_cast<size_t>(workers);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  options.seed = static_cast<uint64_t>(seed);
  FAIRRANK_ASSIGN_OR_RETURN(Table table, GenerateWorkers(options));
  *default_name = "synthetic";
  tables["synthetic"] = std::make_unique<Table>(std::move(table));
  return tables;
}

StatusOr<ServerOptions> OptionsFromFlags(const FlagParser& flags) {
  ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  FAIRRANK_ASSIGN_OR_RETURN(int64_t port, NonNegativeInt(flags, "port", 8080));
  options.port = static_cast<int>(port);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t threads,
                            NonNegativeInt(flags, "threads", 4));
  options.num_workers = static_cast<int>(threads);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t inflight,
                            NonNegativeInt(flags, "max-inflight", 0));
  options.max_inflight_audits = static_cast<int>(inflight);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t queue_depth,
                            NonNegativeInt(flags, "queue-depth", 16));
  options.queue_capacity = static_cast<size_t>(queue_depth);
  FAIRRANK_ASSIGN_OR_RETURN(
      options.request_timeout_ceiling_ms,
      NonNegativeInt(flags, "timeout-ceiling-ms", 10000));
  FAIRRANK_ASSIGN_OR_RETURN(options.default_timeout_ms,
                            NonNegativeInt(flags, "default-timeout-ms", 0));
  FAIRRANK_ASSIGN_OR_RETURN(int64_t max_nodes,
                            NonNegativeInt(flags, "max-nodes", 0));
  options.max_total_nodes = static_cast<uint64_t>(max_nodes);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t max_memory_mb,
                            NonNegativeInt(flags, "max-memory-mb", 0));
  options.max_total_memory_mb = static_cast<uint64_t>(max_memory_mb);
  FAIRRANK_ASSIGN_OR_RETURN(options.retry_after_ms,
                            NonNegativeInt(flags, "retry-after-ms", 250));
  FAIRRANK_ASSIGN_OR_RETURN(options.drain_grace_ms,
                            NonNegativeInt(flags, "drain-ms", 2000));
  FAIRRANK_ASSIGN_OR_RETURN(options.io_timeout_ms,
                            NonNegativeInt(flags, "io-timeout-ms", 5000));
  FAIRRANK_ASSIGN_OR_RETURN(bool no_keep_alive,
                            flags.GetBool("no-keep-alive", false));
  options.keep_alive = !no_keep_alive;
  FAIRRANK_ASSIGN_OR_RETURN(options.keep_alive_idle_ms,
                            NonNegativeInt(flags, "keep-alive-idle-ms", 5000));
  FAIRRANK_ASSIGN_OR_RETURN(
      int64_t max_per_conn,
      NonNegativeInt(flags, "max-requests-per-conn", 100));
  options.max_requests_per_connection = static_cast<int>(max_per_conn);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t cache_mb,
                            NonNegativeInt(flags, "response-cache-mb", 8));
  options.response_cache_mb = static_cast<uint64_t>(cache_mb);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t request_threads,
                            NonNegativeInt(flags, "request-threads", 1));
  options.max_request_threads = static_cast<int>(request_threads);
  FAIRRANK_ASSIGN_OR_RETURN(options.slow_request_ms,
                            NonNegativeInt(flags, "slow-request-ms", 0));
  FAIRRANK_ASSIGN_OR_RETURN(options.access_log,
                            flags.GetBool("access-log", false));
  if (options.access_log || options.slow_request_ms > 0) {
    // The library never touches stdio; the daemon is where log lines land
    // on stdout (one flush per line so tail -f and test greps see them).
    options.log_sink = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
    };
  }
  options.external_shutdown = [] { return ShutdownRequested(); };
  return options;
}

int Main(int argc, char** argv) {
  StatusOr<FlagParser> flags = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags.ok()) return Fail(flags.status());
  Status known = ValidateKnownFlags(*flags, KnownFlags());
  if (!known.ok()) return Fail(known);

  if (flags->Has("fetch")) return RunFetch(*flags);

  std::string default_name;
  StatusOr<std::map<std::string, std::unique_ptr<Table>>> tables =
      LoadDatasets(*flags, &default_name);
  if (!tables.ok()) return Fail(tables.status());
  StatusOr<ServerOptions> options = OptionsFromFlags(*flags);
  if (!options.ok()) return Fail(options.status());

  InstallShutdownHandlers();
  FairAuditServer server(std::move(tables).value(), default_name,
                         std::move(options).value());
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  std::printf("fairauditd listening on %s:%d (dataset %s)\n",
              flags->GetString("host", "127.0.0.1").c_str(), server.port(),
              default_name.c_str());
  std::fflush(stdout);

  Status served = server.Serve();
  if (!served.ok()) return Fail(served);
  std::printf("fairauditd drained (signal %d)\nfinal_stats %s\n",
              ShutdownSignal(), server.StatsJson().c_str());
  return 0;
}

}  // namespace
}  // namespace fairrank

int main(int argc, char** argv) { return fairrank::Main(argc, argv); }
