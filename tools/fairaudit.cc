// fairaudit — command-line front end for the fairrank library.
//
//   fairaudit generate --workers 2000 --seed 7 --out workers.csv
//                      [--realistic] [--bias 0.5]
//   fairaudit profile  --input workers.csv [--function alpha:0.5]
//   fairaudit audit    --input workers.csv --function alpha:0.5
//                      [--algorithm balanced] [--bins 10] [--divergence emd]
//                      [--attributes Gender,Country] [--json] [--histograms]
//                      [--timeout-ms 5000] [--max-nodes 100000]
//                      [--max-memory-mb 512] [--no-cache] [--cache-mb 256]
//                      [--trace] [--aggregate] [--ingest-threads 8]
//   fairaudit suite    --input workers.csv
//                      [--functions alpha:0.25,alpha:0.5,f6]
//                      [--algorithms balanced,unbalanced] [--csv] [--json]
//                      [--suite-threads 4] [--suite-budget total|per-cell]
//                      [--no-share-cache] [+ the audit flags above]
//   fairaudit rank     --input workers.csv --function alpha:0.5 [--top 10]
//   fairaudit exposure --input workers.csv --function alpha:0.5
//                      [--bias log|reciprocal|topk] [--top 10]
//   fairaudit repair   --input workers.csv --function f6 --strategy quantile
//                      [--lambda 0.5] [--out repaired.csv]
//   fairaudit apply    --input workers.csv --spec partitioning.txt
//                      --function alpha:0.5 [--collect-rest]
//   fairaudit significance --input workers.csv --function f6
//                      [--iterations 99] [--algorithm balanced]
//   fairaudit catalog  --input workers.csv [--algorithm balanced]
//   fairaudit list
//
// `audit --save-partitioning file.txt` writes the found partitioning's
// structure; `apply` re-applies it to (possibly different) data — audit a
// sample, monitor the full population.
//
// Scoring function specs: "alpha:<a>" for the paper's linear family,
// "f6".."f9" for the biased-by-design functions (add ":<seed>" to reseed,
// e.g. "f7:99"), or "weights:Attr=0.7,Other=0.3" for an arbitrary linear
// function over observed attributes.
//
// `--timeout-ms`, `--max-nodes` and `--max-memory-mb` (accepted by audit,
// suite, repair, significance and catalog) bound the partition search; on
// exhaustion the search degrades to its best partitioning found so far and
// the report / JSON marks the result truncated with the reason. The command
// still exits 0 — a bounded audit is an answer, not an error.
//
// `suite` runs the full algorithms × functions grid (the paper's tables).
// Cells are dispatched onto `--suite-threads` workers; with the default
// `--suite-budget total`, `--max-nodes` / `--max-memory-mb` bound the
// *aggregate* work of the whole grid via one hierarchical budget
// (`per-cell` restores the old every-cell-gets-the-full-allowance
// semantics). A failing cell renders as ERR and never aborts the grid.
// `--functions` is comma-separated, so `weights:...` specs (which contain
// commas) are not accepted there — use `audit` for those.
//
// The evaluator memoizes per-partition histograms and pairwise divergences
// (see fairness/eval_cache.h); `--no-cache` disables the memoization and
// `--cache-mb` caps its resident size. Results are bit-identical either way;
// the report prints the hit/miss counters.
//
// `audit --trace` records spans through the pipeline (search, expand,
// evaluate, histogram, emd, cache hits) and prints the span tree with
// per-name totals to stderr after the report — where the audit's time
// actually went, without a profiler.
//
// Input CSVs must carry the paper's worker schema columns (see
// `fairaudit generate`); extra columns are ignored.

#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "data/csv.h"
#include "data/profile.h"
#include "fairness/aggregate.h"
#include "fairness/auditor.h"
#include "fairness/exposure.h"
#include "fairness/option_flags.h"
#include "fairness/report.h"
#include "fairness/serialize.h"
#include "fairness/significance.h"
#include "fairness/suite.h"
#include "marketplace/generator.h"
#include "marketplace/ranking.h"
#include "marketplace/realistic.h"
#include "marketplace/tasks.h"
#include "marketplace/worker.h"
#include "repair/repair.h"
#include "stats/divergence.h"

namespace fairrank {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "fairaudit: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: fairaudit <generate|profile|audit|suite|rank|exposure|"
               "repair|apply|significance|list> [flags]\n"
               "run `fairaudit list` for algorithms, divergences and "
               "function specs\n");
  return 2;
}

/// Parses a scoring-function spec (see file header). Shared with
/// fairauditd so CLI and HTTP specs parse identically.
StatusOr<std::unique_ptr<ScoringFunction>> MakeFunction(
    const std::string& spec) {
  return MakeFunctionFromSpec(spec);
}

StatusOr<Table> LoadWorkers(const FlagParser& flags) {
  std::string input = flags.GetString("input", "");
  if (input.empty()) {
    return Status::InvalidArgument("--input <csv> is required");
  }
  FAIRRANK_ASSIGN_OR_RETURN(Schema schema, MakePaperWorkerSchema());
  return ReadCsvFile(input, schema);
}

int CmdGenerate(const FlagParser& flags) {
  auto workers = flags.GetInt("workers", 500);
  auto seed = flags.GetInt("seed", 42);
  auto realistic = flags.GetBool("realistic", false);
  if (!workers.ok()) return Fail(workers.status());
  if (!seed.ok()) return Fail(seed.status());
  if (!realistic.ok()) return Fail(realistic.status());

  StatusOr<Table> table = Status::Internal("unset");
  if (*realistic) {
    RealisticGeneratorOptions options;
    options.num_workers = static_cast<size_t>(*workers);
    options.seed = static_cast<uint64_t>(*seed);
    auto bias = flags.GetDouble("bias", 1.0);
    if (!bias.ok()) return Fail(bias.status());
    options.bias_strength = *bias;
    table = GenerateRealisticWorkers(options);
  } else {
    GeneratorOptions options;
    options.num_workers = static_cast<size_t>(*workers);
    options.seed = static_cast<uint64_t>(*seed);
    table = GenerateWorkers(options);
  }
  if (!table.ok()) return Fail(table.status());
  std::string out = flags.GetString("out", "workers.csv");
  Status written = WriteCsvFile(out, *table);
  if (!written.ok()) return Fail(written);
  std::printf("wrote %zu %s workers (seed %lld) to %s\n", table->num_rows(),
              *realistic ? "realistic" : "uniform",
              static_cast<long long>(*seed), out.c_str());
  return 0;
}

int CmdProfile(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<TableProfile> profile = ProfileTable(*workers);
  if (!profile.ok()) return Fail(profile.status());
  std::printf("%s", FormatTableProfile(*profile).c_str());

  // With a function, also print the single-attribute association screen.
  if (flags.Has("function")) {
    StatusOr<std::unique_ptr<ScoringFunction>> fn =
        MakeFunction(flags.GetString("function", "alpha:0.5"));
    if (!fn.ok()) return Fail(fn.status());
    StatusOr<std::vector<double>> scores = (*fn)->ScoreAll(*workers);
    if (!scores.ok()) return Fail(scores.status());
    StatusOr<std::vector<ScoreAssociation>> associations =
        ScoreAssociations(*workers, *scores);
    if (!associations.ok()) return Fail(associations.status());
    std::printf("\nscore association with %s (single-attribute screen):\n",
                (*fn)->Name().c_str());
    TextTable table;
    table.SetHeader({"attribute", "eta^2", "max mean gap"});
    for (const ScoreAssociation& a : *associations) {
      table.AddRow({a.attribute, FormatDouble(a.eta_squared, 4),
                    FormatDouble(a.max_mean_gap, 4)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "note: a weak screen does not mean fair — run `fairaudit audit` for "
        "subgroup combinations.\n");
  }
  return 0;
}

/// `audit --aggregate`: collapses the table into per-cell histograms with
/// the sharded ingest path and runs the balanced audit on the cells — the
/// million-worker route (see DESIGN.md §12). Shares the evaluator, limit,
/// and output flags with the row-level audit.
int CmdAuditAggregate(const FlagParser& flags, const Table& workers,
                      const ScoringFunction& fn, const AuditOptions& options) {
  StatusOr<std::vector<double>> scores = fn.ScoreAll(workers);
  if (!scores.ok()) return Fail(scores.status());
  StatusOr<int64_t> ingest_threads = flags.GetInt("ingest-threads", 1);
  if (!ingest_threads.ok()) return Fail(ingest_threads.status());

  CellStoreIngestOptions ingest;
  ingest.num_bins = options.evaluator.num_bins;
  ingest.score_lo = options.evaluator.score_lo;
  ingest.score_hi = options.evaluator.score_hi;
  ingest.num_threads = static_cast<int>(*ingest_threads);
  ingest.protected_attributes = options.protected_attributes;

  ResourceBudget budget = options.limits.MakeBudget();
  ExecutionContext context = options.limits.MakeContext(&budget);

  Stopwatch ingest_timer;
  StatusOr<CellStore> store =
      BuildCellStoreParallel(workers, *scores, ingest, context);
  if (!store.ok()) return Fail(store.status());

  AggregateReportInfo info;
  info.scoring_function = fn.Name();
  info.divergence = options.evaluator.divergence;
  info.ingest_threads =
      ingest.num_threads <= 0 ? HardwareThreads() : ingest.num_threads;
  info.ingest_seconds = ingest_timer.ElapsedSeconds();

  Stopwatch audit_timer;
  StatusOr<AggregateAuditResult> result =
      AuditAggregateBalanced(*store, options.evaluator.divergence, context);
  if (!result.ok()) return Fail(result.status());
  info.audit_seconds = audit_timer.ElapsedSeconds();

  StatusOr<bool> json = flags.GetBool("json", false);
  if (!json.ok()) return Fail(json.status());
  if (*json) {
    std::printf("%s\n",
                FormatAggregateAuditJson(*store, *result, info).c_str());
    return 0;
  }
  ReportOptions report;
  StatusOr<bool> histograms = flags.GetBool("histograms", false);
  if (!histograms.ok()) return Fail(histograms.status());
  report.include_histograms = *histograms;
  StatusOr<int64_t> max_partitions = flags.GetInt("max-partitions", 20);
  if (!max_partitions.ok()) return Fail(max_partitions.status());
  report.max_partitions = static_cast<size_t>(*max_partitions);
  std::printf("%s",
              FormatAggregateAuditReport(*store, *result, info, report).c_str());
  return 0;
}

int CmdAudit(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<std::unique_ptr<ScoringFunction>> fn =
      MakeFunction(flags.GetString("function", "alpha:0.5"));
  if (!fn.ok()) return Fail(fn.status());
  StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());
  StatusOr<bool> traced = flags.GetBool("trace", false);
  if (!traced.ok()) return Fail(traced.status());
  std::unique_ptr<TraceContext> trace;
  if (*traced) {
    trace = std::make_unique<TraceContext>();
    options->limits.trace = trace.get();
  }

  StatusOr<bool> aggregate = flags.GetBool("aggregate", false);
  if (!aggregate.ok()) return Fail(aggregate.status());
  if (*aggregate) {
    if (flags.Has("save-partitioning")) {
      return Fail(Status::InvalidArgument(
          "--save-partitioning needs row-level partitions; it cannot be "
          "combined with --aggregate"));
    }
    int code = CmdAuditAggregate(flags, *workers, **fn, *options);
    if (trace != nullptr) {
      std::fprintf(stderr, "%s", trace->FormatTree().c_str());
    }
    return code;
  }

  FairnessAuditor auditor(&workers.value());
  StatusOr<AuditResult> result = auditor.Audit(**fn, *options);
  if (!result.ok()) return Fail(result.status());
  // The tree goes to stderr so `--json | jq` keeps working with --trace on.
  if (trace != nullptr) {
    std::fprintf(stderr, "%s", trace->FormatTree().c_str());
  }

  std::string save_path = flags.GetString("save-partitioning", "");
  if (!save_path.empty()) {
    std::string text =
        SerializePartitioning(workers->schema(), result->partitioning);
    FILE* f = std::fopen(save_path.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot open '" + save_path + "'"));
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "saved partitioning structure to %s\n",
                 save_path.c_str());
  }

  StatusOr<bool> json = flags.GetBool("json", false);
  if (!json.ok()) return Fail(json.status());
  if (*json) {
    std::printf("%s\n", FormatAuditJson(*result).c_str());
    return 0;
  }
  ReportOptions report;
  StatusOr<bool> histograms = flags.GetBool("histograms", false);
  if (!histograms.ok()) return Fail(histograms.status());
  report.include_histograms = *histograms;
  StatusOr<int64_t> max_partitions = flags.GetInt("max-partitions", 20);
  if (!max_partitions.ok()) return Fail(max_partitions.status());
  report.max_partitions = static_cast<size_t>(*max_partitions);
  std::printf("%s", FormatAuditReport(*result, report).c_str());
  return 0;
}

int CmdSuite(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<AuditOptions> audit_options = AuditOptionsFromFlags(flags);
  if (!audit_options.ok()) return Fail(audit_options.status());

  std::vector<std::unique_ptr<ScoringFunction>> owned;
  std::vector<const ScoringFunction*> functions;
  for (const std::string& spec :
       Split(flags.GetString("functions", "alpha:0.25,alpha:0.5,alpha:0.75"),
             ',')) {
    StatusOr<std::unique_ptr<ScoringFunction>> fn =
        MakeFunction(std::string(Trim(spec)));
    if (!fn.ok()) return Fail(fn.status());
    owned.push_back(std::move(fn).value());
    functions.push_back(owned.back().get());
  }

  SuiteOptions options;
  std::string algorithms = flags.GetString("algorithms", "");
  if (!algorithms.empty()) {
    for (const std::string& name : Split(algorithms, ',')) {
      options.algorithms.emplace_back(Trim(name));
    }
  }
  options.evaluator = audit_options->evaluator;
  options.seed = audit_options->seed;
  options.protected_attributes = audit_options->protected_attributes;
  options.limits = audit_options->limits;
  StatusOr<int64_t> suite_threads = flags.GetInt("suite-threads", 1);
  if (!suite_threads.ok()) return Fail(suite_threads.status());
  if (*suite_threads < 0) {
    return Fail(Status::InvalidArgument("--suite-threads must be >= 0"));
  }
  options.num_threads = static_cast<int>(*suite_threads);
  std::string budget_mode = flags.GetString("suite-budget", "total");
  if (budget_mode == "total") {
    options.budget_mode = SuiteBudgetMode::kTotal;
  } else if (budget_mode == "per-cell") {
    options.budget_mode = SuiteBudgetMode::kPerCell;
  } else {
    return Fail(
        Status::InvalidArgument("--suite-budget must be total|per-cell"));
  }
  StatusOr<bool> no_share = flags.GetBool("no-share-cache", false);
  if (!no_share.ok()) return Fail(no_share.status());
  options.share_column_cache = !*no_share;

  AuditSuite suite(&workers.value());
  StatusOr<SuiteResult> result = suite.Run(functions, options);
  if (!result.ok()) return Fail(result.status());

  StatusOr<bool> json = flags.GetBool("json", false);
  if (!json.ok()) return Fail(json.status());
  StatusOr<bool> csv = flags.GetBool("csv", false);
  if (!csv.ok()) return Fail(csv.status());
  if (*json) {
    std::printf("%s\n", FormatSuiteJson(*result).c_str());
  } else if (*csv) {
    std::printf("%s\n%s", FormatSuiteCsv(*result).c_str(),
                FormatSuiteSummaryCsv(*result).c_str());
  } else {
    std::printf("Average unfairness:\n%s\ntime (in secs):\n%s\n%s",
                FormatSuiteUnfairness(*result).c_str(),
                FormatSuiteRuntime(*result).c_str(),
                FormatSuiteSummary(*result).c_str());
  }
  return 0;
}

int CmdRank(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<std::unique_ptr<ScoringFunction>> fn =
      MakeFunction(flags.GetString("function", "alpha:0.5"));
  if (!fn.ok()) return Fail(fn.status());
  StatusOr<int64_t> top = flags.GetInt("top", 10);
  if (!top.ok()) return Fail(top.status());

  RankingEngine engine(&workers.value());
  StatusOr<std::vector<RankedWorker>> ranking =
      engine.TopK(**fn, static_cast<size_t>(*top));
  if (!ranking.ok()) return Fail(ranking.status());

  TextTable table;
  std::vector<std::string> header = {"rank", "row", "score"};
  for (size_t a = 0; a < workers->schema().num_attributes(); ++a) {
    if (workers->schema().attribute(a).is_protected()) {
      header.push_back(workers->schema().attribute(a).name());
    }
  }
  table.SetHeader(header);
  for (size_t i = 0; i < ranking->size(); ++i) {
    const RankedWorker& r = (*ranking)[i];
    std::vector<std::string> row = {std::to_string(i + 1),
                                    std::to_string(r.row),
                                    FormatDouble(r.score, 4)};
    for (size_t a = 0; a < workers->schema().num_attributes(); ++a) {
      if (workers->schema().attribute(a).is_protected()) {
        row.push_back(workers->CellToString(r.row, a));
      }
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdExposure(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<std::unique_ptr<ScoringFunction>> fn =
      MakeFunction(flags.GetString("function", "alpha:0.5"));
  if (!fn.ok()) return Fail(fn.status());

  ExposureOptions options;
  std::string bias = flags.GetString("bias", "log");
  if (bias == "log") {
    options.bias = PositionBias::kLogarithmic;
  } else if (bias == "reciprocal") {
    options.bias = PositionBias::kReciprocal;
  } else if (bias == "topk") {
    options.bias = PositionBias::kTopK;
    StatusOr<int64_t> top = flags.GetInt("top", 10);
    if (!top.ok()) return Fail(top.status());
    options.top_k = static_cast<size_t>(*top);
  } else {
    return Fail(Status::InvalidArgument("--bias must be log|reciprocal|topk"));
  }

  RankingEngine engine(&workers.value());
  StatusOr<std::vector<RankedWorker>> ranking = engine.Rank(**fn);
  if (!ranking.ok()) return Fail(ranking.status());
  StatusOr<std::vector<ExposureReport>> reports =
      ComputeAllExposures(*workers, *ranking, options);
  if (!reports.ok()) return Fail(reports.status());

  for (const ExposureReport& report : *reports) {
    std::printf("%s  (exposure gap %.4f, treatment disparity %.4f)\n",
                report.attribute.c_str(), report.exposure_gap,
                report.treatment_disparity);
    TextTable table;
    table.SetHeader({"group", "size", "mean exposure", "mean score"});
    for (const GroupExposure& g : report.groups) {
      table.AddRow({g.group_label, std::to_string(g.group_size),
                    FormatDouble(g.mean_exposure, 4),
                    FormatDouble(g.mean_score, 4)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}

int CmdRepair(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<std::unique_ptr<ScoringFunction>> fn =
      MakeFunction(flags.GetString("function", "f6"));
  if (!fn.ok()) return Fail(fn.status());
  StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());

  std::string strategy_name = flags.GetString("strategy", "quantile");
  std::unique_ptr<RepairStrategy> strategy;
  if (strategy_name == "quantile") {
    strategy = MakeQuantileRepair();
  } else if (strategy_name == "affine") {
    strategy = MakeAffineRepair();
  } else if (strategy_name == "interpolation") {
    StatusOr<double> lambda = flags.GetDouble("lambda", 0.5);
    if (!lambda.ok()) return Fail(lambda.status());
    strategy = MakeInterpolationRepair(*lambda);
  } else {
    return Fail(Status::InvalidArgument(
        "--strategy must be quantile|affine|interpolation"));
  }

  FairnessAuditor auditor(&workers.value());
  StatusOr<AuditResult> audit = auditor.Audit(**fn, *options);
  if (!audit.ok()) return Fail(audit.status());
  StatusOr<std::vector<double>> scores = (*fn)->ScoreAll(*workers);
  if (!scores.ok()) return Fail(scores.status());

  StatusOr<RepairEvaluation> evaluation =
      EvaluateRepair(*workers, audit->partitioning, *scores, *strategy,
                     options->evaluator);
  if (!evaluation.ok()) return Fail(evaluation.status());
  std::printf(
      "repair=%s on %s/%s: unfairness %.4f -> %.4f  "
      "mean |delta score| %.4f  rank correlation %.4f\n",
      strategy->Name().c_str(), audit->algorithm.c_str(),
      audit->scoring_function.c_str(), evaluation->unfairness_before,
      evaluation->unfairness_after, evaluation->mean_score_change,
      evaluation->rank_correlation);

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    // Emit row,original,repaired per worker.
    std::string csv = "row,original_score,repaired_score\n";
    for (size_t i = 0; i < scores->size(); ++i) {
      csv += std::to_string(i) + "," + FormatDouble((*scores)[i], 6) + "," +
             FormatDouble(evaluation->repaired_scores[i], 6) + "\n";
    }
    FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot open '" + out + "' for writing"));
    }
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("wrote repaired scores to %s\n", out.c_str());
  }
  return 0;
}

int CmdApply(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  std::string spec_path = flags.GetString("spec", "");
  if (spec_path.empty()) {
    return Fail(Status::InvalidArgument("--spec <file> is required"));
  }
  FILE* f = std::fopen(spec_path.c_str(), "r");
  if (f == nullptr) {
    return Fail(Status::IOError("cannot open '" + spec_path + "'"));
  }
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);

  StatusOr<bool> collect = flags.GetBool("collect-rest", false);
  if (!collect.ok()) return Fail(collect.status());
  StatusOr<Partitioning> partitioning = ApplyPartitioningSpec(
      *workers, text,
      *collect ? UnmatchedRowPolicy::kCollectRest
               : UnmatchedRowPolicy::kError);
  if (!partitioning.ok()) return Fail(partitioning.status());

  StatusOr<std::unique_ptr<ScoringFunction>> fn =
      MakeFunction(flags.GetString("function", "alpha:0.5"));
  if (!fn.ok()) return Fail(fn.status());
  StatusOr<std::vector<double>> scores = (*fn)->ScoreAll(*workers);
  if (!scores.ok()) return Fail(scores.status());
  EvaluatorOptions evaluator;
  StatusOr<int64_t> bins = flags.GetInt("bins", 10);
  if (!bins.ok()) return Fail(bins.status());
  evaluator.num_bins = static_cast<int>(*bins);
  evaluator.divergence = flags.GetString("divergence", "emd");
  StatusOr<UnfairnessEvaluator> eval =
      UnfairnessEvaluator::Make(&workers.value(), *scores, evaluator);
  if (!eval.ok()) return Fail(eval.status());
  StatusOr<double> unfairness =
      eval->AveragePairwiseUnfairness(*partitioning);
  if (!unfairness.ok()) return Fail(unfairness.status());

  std::printf("applied %zu partitions from %s to %zu workers\n",
              partitioning->size(), spec_path.c_str(), workers->num_rows());
  std::printf("unfairness of %s on this partitioning: %.4f\n",
              (*fn)->Name().c_str(), *unfairness);
  TextTable table;
  table.SetHeader({"partition", "size"});
  for (const Partition& p : *partitioning) {
    table.AddRow({PartitionLabel(workers->schema(), p),
                  std::to_string(p.size())});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdSignificance(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<std::unique_ptr<ScoringFunction>> fn =
      MakeFunction(flags.GetString("function", "alpha:0.5"));
  if (!fn.ok()) return Fail(fn.status());
  StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());
  StatusOr<int64_t> iterations = flags.GetInt("iterations", 99);
  if (!iterations.ok()) return Fail(iterations.status());

  FairnessAuditor auditor(&workers.value());
  StatusOr<AuditResult> audit = auditor.Audit(**fn, *options);
  if (!audit.ok()) return Fail(audit.status());
  StatusOr<std::vector<double>> scores = (*fn)->ScoreAll(*workers);
  if (!scores.ok()) return Fail(scores.status());
  StatusOr<UnfairnessEvaluator> eval = UnfairnessEvaluator::Make(
      &workers.value(), *scores, options->evaluator);
  if (!eval.ok()) return Fail(eval.status());

  StatusOr<PermutationResult> permutation = PermutationTestUnfairness(
      *eval, audit->partitioning, static_cast<size_t>(*iterations),
      options->seed + 1);
  if (!permutation.ok()) return Fail(permutation.status());
  StatusOr<BootstrapResult> bootstrap =
      BootstrapUnfairness(*eval, audit->partitioning,
                          static_cast<size_t>(*iterations), options->seed + 2);
  if (!bootstrap.ok()) return Fail(bootstrap.status());

  std::printf("audit: %s via %s -> unfairness %.4f (%zu partitions)%s\n",
              audit->scoring_function.c_str(), audit->algorithm.c_str(),
              audit->unfairness, audit->partitions.size(),
              audit->truncated ? " [search truncated]" : "");
  std::printf("permutation test (%lld iterations): null mean %.4f, "
              "p-value %.4f\n",
              static_cast<long long>(*iterations), permutation->null_mean,
              permutation->p_value);
  std::printf("bootstrap 95%% CI: [%.4f, %.4f] (mean %.4f)\n",
              bootstrap->ci_lo, bootstrap->ci_hi, bootstrap->mean);
  return 0;
}

int CmdCatalog(const FlagParser& flags) {
  StatusOr<Table> workers = LoadWorkers(flags);
  if (!workers.ok()) return Fail(workers.status());
  StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  StatusOr<std::vector<CategoryAuditRow>> rows =
      AuditCatalog(*workers, catalog, *options);
  if (!rows.ok()) return Fail(rows.status());
  std::printf("per-category audit via %s (least fair first):\n",
              options->algorithm.c_str());
  TextTable table;
  table.SetHeader(
      {"category", "unfairness", "partitions", "attributes", "truncated"});
  bool any_truncated = false;
  for (const CategoryAuditRow& row : *rows) {
    any_truncated |= row.truncated;
    table.AddRow({row.category, FormatDouble(row.unfairness, 4),
                  std::to_string(row.num_partitions),
                  Join(row.attributes_used, ", "),
                  row.truncated ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  if (any_truncated) {
    std::printf(
        "note: truncated rows hit the deadline or budget; their unfairness "
        "is a lower bound from the best partitioning found in time.\n");
  }
  return 0;
}

int CmdList() {
  std::printf("algorithms:\n");
  for (const std::string& name : KnownAlgorithmNames()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("divergences:\n");
  for (const std::string& name : KnownDivergenceNames()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf(
      "function specs:\n"
      "  alpha:<a>              a*LanguageTest + (1-a)*ApprovalRate\n"
      "  f6[:seed]..f9[:seed]   the paper's biased-by-design functions\n"
      "  weights:A=0.7,B=0.3    arbitrary linear function\n");
  return 0;
}

/// The exact flags each command accepts. A flag outside this set fails the
/// command (see ValidateKnownFlags) — a misspelled `--max-node` must not
/// silently run an unbounded audit.
StatusOr<std::vector<std::string>> KnownFlagsForCommand(
    const std::string& command) {
  std::vector<std::string> known;
  auto add = [&known](std::initializer_list<const char*> names) {
    for (const char* name : names) known.emplace_back(name);
  };
  auto add_audit_flags = [&known] {
    const std::vector<std::string>& names = AuditOptionFlagNames();
    known.insert(known.end(), names.begin(), names.end());
  };
  if (command == "generate") {
    add({"workers", "seed", "realistic", "bias", "out"});
  } else if (command == "profile") {
    add({"input", "function"});
  } else if (command == "audit") {
    add_audit_flags();
    add({"input", "function", "json", "histograms", "max-partitions",
         "save-partitioning", "trace", "aggregate", "ingest-threads"});
  } else if (command == "suite") {
    add_audit_flags();
    add({"input", "functions", "algorithms", "csv", "json", "suite-threads",
         "suite-budget", "no-share-cache"});
  } else if (command == "rank") {
    add({"input", "function", "top"});
  } else if (command == "exposure") {
    add({"input", "function", "bias", "top"});
  } else if (command == "repair") {
    add_audit_flags();
    add({"input", "function", "strategy", "lambda", "out"});
  } else if (command == "apply") {
    add({"input", "spec", "function", "collect-rest", "bins", "divergence"});
  } else if (command == "significance") {
    add_audit_flags();
    add({"input", "function", "iterations"});
  } else if (command == "catalog") {
    add_audit_flags();
    add({"input"});
  } else if (command == "list") {
    // No flags.
  } else {
    return Status::InvalidArgument("unknown command '" + command + "'");
  }
  return known;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  StatusOr<FlagParser> flags = FlagParser::Parse(argc - 2, argv + 2);
  if (!flags.ok()) return Fail(flags.status());
  StatusOr<std::vector<std::string>> known = KnownFlagsForCommand(command);
  if (!known.ok()) return Usage();
  Status validated = ValidateKnownFlags(*flags, *known);
  if (!validated.ok()) return Fail(validated);
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "profile") return CmdProfile(*flags);
  if (command == "audit") return CmdAudit(*flags);
  if (command == "suite") return CmdSuite(*flags);
  if (command == "rank") return CmdRank(*flags);
  if (command == "exposure") return CmdExposure(*flags);
  if (command == "repair") return CmdRepair(*flags);
  if (command == "apply") return CmdApply(*flags);
  if (command == "significance") return CmdSignificance(*flags);
  if (command == "catalog") return CmdCatalog(*flags);
  if (command == "list") return CmdList();
  return Usage();
}

}  // namespace
}  // namespace fairrank

int main(int argc, char** argv) { return fairrank::Main(argc, argv); }
