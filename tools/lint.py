#!/usr/bin/env python3
"""Project-specific lint rules the generic tools can't express.

The linter is a table of rules (RULES, bottom of this file) over a parsed
tree snapshot. Every rule carries self-test cases — tiny in-memory file
trees with a known finding count — run with `--selftest`, so a rule that
silently stops matching fails CI instead of rotting.

File rules (fast pure-regex pass over stripped code, < 5s):

  rng-discipline   No rand()/std::rand/srand/random_device outside
                   src/common/rng.* — all randomness flows through the
                   seeded, reproducible Rng so runs stay deterministic.
  no-iostream      No std::cout / std::cerr / printf-family output in src/
                   library code (snprintf into a buffer is fine). The
                   library reports through Status and report strings;
                   binaries under tools/, bench/, examples/ may print.
  no-naked-thread  No std::thread / std::async / pthread_create outside
                   src/common/parallel.cc — all concurrency (library code,
                   the suite scheduler, the src/server/ request executor,
                   tools/, bench/, examples/) goes through ParallelFor /
                   ParallelForEach so cancellation, deadlines and exception
                   capture stay in one audited place. Only tests may spawn
                   threads (stress tests race the cache on purpose).
  no-sleep-in-server
                   No sleep_for / sleep_until / usleep / nanosleep / sleep()
                   inside src/server/ — the serving layer must be
                   event-driven (poll timeouts, condition variables,
                   Deadline) so drain latency is bounded by real events.
  no-raw-parse-in-server
                   No memcpy/memmove/str*cpy/sscanf/atoi/strto* parsing in
                   src/server/ outside http.cc. Wire bytes are parsed in
                   exactly one fuzzed, corpus-covered file; everything else
                   consumes parsed structs. (std::memset on a sockaddr is
                   socket API, not parsing, and stays allowed.)
  no-fault-in-bench
                   bench/ binaries never include or call the test-only
                   fault-injection hooks — a benchmark that can be
                   chaos-armed measures the fault plan, not the system.
  include-guards   Headers use #ifndef FAIRRANK_<PATH>_H_ guards derived
                   from their path (never #pragma once).
  no-suppressions  No blanket NOLINT without a specific rule name, and no
                   FAIRRANK_NO_THREAD_SAFETY_ANALYSIS without an
                   explanatory comment on the preceding or same line.

Tree rules (cross-file consistency):

  flag-sync        Every `--flag` mentioned in a tools/*.cc string literal
                   must be declared in a known-flags list (fairauditd's
                   KnownFlags, fairaudit's add({...}) lists, or
                   AuditOptionFlagNames), and every declared flag must be
                   documented in README.md — the CLI/HTTP surface stays
                   fully validated and fully documented.
  bench-json-schema
                   Checked-in BENCH_*.json baselines parse as strict JSON
                   (no NaN/Infinity), carry a "bench" name, and known
                   bench kinds keep their required keys — a malformed
                   baseline must fail lint, not a downstream diff script.
  metrics-naming   Every "fairrank_..." metric-name literal in src/,
                   tools/ or bench/ is snake_case, carries a recognized
                   unit/kind suffix (_total, _seconds, _bytes, _count,
                   _ratio, _info) and never doubles underscores — the
                   /metrics exposition stays Prometheus-conventional.
                   tests/ may spell invalid names on purpose.

Usage:
  python3 tools/lint.py [root]     lint the tree (root defaults to repo root)
  python3 tools/lint.py --selftest run every rule's self-test cases
Exit status: 0 clean, 1 findings/self-test failure, 2 usage/internal error.
"""

import json
import os
import re
import sys

LIBRARY_DIRS = ("src",)
ALL_CPP_DIRS = ("src", "tests", "tools", "bench", "examples", "fuzz")
CPP_EXTENSIONS = (".h", ".cc")
AUX_FILES = ("README.md",)
STRING_LITERAL = r'"((?:[^"\\\n]|\\.)*)"'
FLAG_WORD = r"--([a-z][a-z0-9]*(?:-[a-z0-9]+)*)"


def strip_comments(text, strip_strings):
    """Replaces comment contents (and string-literal contents when
    `strip_strings`) with spaces of the same length, so reported line
    numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            if strip_strings:
                out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            else:
                out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class FileCtx(object):
    """One C++ file in three views: raw, comments stripped (string literals
    kept — for rules that inspect what binaries print), and fully stripped
    (for rules that inspect code)."""

    def __init__(self, path, raw):
        self.path = path.replace(os.sep, "/")
        self.raw = raw
        self.text = strip_comments(raw, strip_strings=False)
        self.code = strip_comments(raw, strip_strings=True)


class Tree(object):
    """The lint subject: C++ file contexts plus auxiliary raw files
    (README, BENCH baselines). Built from disk for real runs and from
    dicts for rule self-tests."""

    def __init__(self, files, aux):
        self.files = files  # path -> FileCtx
        self.aux = aux      # path -> raw text

    @classmethod
    def from_disk(cls, root):
        files = {}
        for d in ALL_CPP_DIRS:
            base = os.path.join(root, d)
            for dirpath, _, filenames in os.walk(base):
                for name in sorted(filenames):
                    if not name.endswith(CPP_EXTENSIONS):
                        continue
                    path = os.path.relpath(os.path.join(dirpath, name), root)
                    with open(os.path.join(root, path),
                              encoding="utf-8") as f:
                        files[path.replace(os.sep, "/")] = FileCtx(path,
                                                                   f.read())
        aux = {}
        for name in sorted(os.listdir(root)):
            if name in AUX_FILES or (name.startswith("BENCH_") and
                                     name.endswith(".json")):
                with open(os.path.join(root, name), encoding="utf-8") as f:
                    aux[name] = f.read()
        return cls(files, aux)

    @classmethod
    def from_dict(cls, contents):
        files = {}
        aux = {}
        for path, raw in contents.items():
            if path.endswith(CPP_EXTENSIONS):
                files[path] = FileCtx(path, raw)
            else:
                aux[path] = raw
        return cls(files, aux)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class Rule(object):
    """Base rule: a name, a check over the tree yielding findings as
    (path, line, message), and self-test cases as (files_dict,
    expected_finding_count)."""

    name = None
    selftests = ()

    def check(self, tree):
        raise NotImplementedError


class PatternRule(Rule):
    """Regex rule over one view of each in-scope file."""

    def __init__(self, name, pattern, message, scope, exempt=(), view="code",
                 selftests=()):
        self.name = name
        self.pattern = re.compile(pattern)
        self.message = message
        self.scope = scope  # predicate over the posix-relative path
        self.exempt = frozenset(exempt)
        self.view = view    # "code", "text", or "raw"
        self.selftests = selftests

    def check(self, tree):
        for path, ctx in sorted(tree.files.items()):
            if not self.scope(path) or path in self.exempt:
                continue
            text = getattr(ctx, self.view)
            for m in self.pattern.finditer(text):
                yield (path, line_of(text, m.start()),
                       self.message % m.group(0))


def in_library(path):
    return path.startswith("src/")


def in_server(path):
    return path.startswith("src/server/")


class IncludeGuardRule(Rule):
    name = "include-guards"

    def check(self, tree):
        for path, ctx in sorted(tree.files.items()):
            if not path.startswith("src/") or not path.endswith(".h"):
                continue
            if re.search(r"^\s*#\s*pragma\s+once", ctx.raw, re.M):
                yield (path, 1, "use an #ifndef guard, not #pragma once")
            expected = ("FAIRRANK_" +
                        re.sub(r"[/.]", "_", path[len("src/"):]).upper() +
                        "_")
            m = re.search(r"^\s*#\s*ifndef\s+(\S+)\s*\n\s*#\s*define\s+(\S+)",
                          ctx.raw, re.M)
            if m is None:
                yield (path, 1,
                       "missing #ifndef/#define include guard (expected %s)"
                       % expected)
            elif m.group(1) != expected or m.group(2) != expected:
                yield (path, line_of(ctx.raw, m.start()),
                       "guard %s does not match path (expected %s)"
                       % (m.group(1), expected))

    selftests = (
        ({"src/common/good.h":
          "#ifndef FAIRRANK_COMMON_GOOD_H_\n"
          "#define FAIRRANK_COMMON_GOOD_H_\n#endif\n"}, 0),
        ({"src/common/bad.h": "#pragma once\nint x;\n"}, 2),
        ({"src/common/moved.h":
          "#ifndef FAIRRANK_OLD_PATH_H_\n#define FAIRRANK_OLD_PATH_H_\n"
          "#endif\n"}, 1),
        ({"tests/anything.h": "#pragma once\n"}, 0),
    )


class SuppressionRule(Rule):
    name = "no-suppressions"

    def check(self, tree):
        for path, ctx in sorted(tree.files.items()):
            lines = ctx.raw.split("\n")
            for i, line in enumerate(lines, 1):
                m = re.search(r"NOLINT(?!NEXTLINE)(\(([^)]*)\))?", line)
                if m and not m.group(2):
                    yield (path, i,
                           "NOLINT must name the suppressed check, e.g. "
                           "NOLINT(bugprone-foo)")
                if ("FAIRRANK_NO_THREAD_SAFETY_ANALYSIS" in line and
                        not path.endswith("thread_annotations.h")):
                    prev = lines[i - 2] if i >= 2 else ""
                    if "//" not in line and "//" not in prev:
                        yield (path, i,
                               "FAIRRANK_NO_THREAD_SAFETY_ANALYSIS needs a "
                               "comment explaining why the analysis cannot "
                               "see the invariant")

    selftests = (
        ({"src/a.cc": "int x;  // NOLINT\n"}, 1),
        ({"src/a.cc": "int x;  // NOLINT(bugprone-foo)\n"}, 0),
        ({"src/a.cc": "void f() FAIRRANK_NO_THREAD_SAFETY_ANALYSIS;\n"}, 1),
        ({"src/a.cc": "// lock held by caller\n"
                      "void f() FAIRRANK_NO_THREAD_SAFETY_ANALYSIS;\n"}, 0),
    )


class FlagSyncRule(Rule):
    """Cross-checks the three flag surfaces: strings mentioning `--x` in
    tools/*.cc, the known-flags declarations, and README.md."""

    name = "flag-sync"

    # Brace initializer lists that declare accepted flags: fairaudit's
    # add({...}) lambda calls and the static vector literals behind
    # fairauditd's KnownFlags() / AuditOptionFlagNames().
    DECLARATION = re.compile(
        r"(?:add\(\{|new std::vector<std::string>\{)(.*?)\}", re.S)
    DECLARATION_FILES = ("tools/", "src/fairness/option_flags.cc")

    def declared_flags(self, tree):
        declared = {}
        for path, ctx in sorted(tree.files.items()):
            if not path.startswith(self.DECLARATION_FILES):
                continue
            for block in self.DECLARATION.finditer(ctx.text):
                for lit in re.finditer(STRING_LITERAL, block.group(1)):
                    name = lit.group(1)
                    if re.fullmatch(r"[a-z][a-z0-9-]*", name):
                        declared.setdefault(
                            name,
                            (path, line_of(ctx.text,
                                           block.start() + lit.start())))
        return declared

    def check(self, tree):
        declared = self.declared_flags(tree)
        readme = tree.aux.get("README.md", "")
        documented = set(m.group(1)
                         for m in re.finditer(FLAG_WORD, readme))
        # Direction 1: a flag *mentioned* by a tool (usage text, error
        # message) must be a declared flag somewhere — mentions of flags
        # that no parser accepts are stale docs.
        for path, ctx in sorted(tree.files.items()):
            if not (path.startswith("tools/") and path.endswith(".cc")):
                continue
            for lit in re.finditer(STRING_LITERAL, ctx.text):
                for m in re.finditer(FLAG_WORD, lit.group(1)):
                    name = m.group(1)
                    if name not in declared:
                        yield (path, line_of(ctx.text, lit.start()),
                               "--%s is mentioned here but declared in no "
                               "known-flags list (KnownFlags / add({...}) / "
                               "AuditOptionFlagNames)" % name)
        # Direction 2: every declared flag is documented in README.md.
        if "README.md" in tree.aux:
            for name, (path, line) in sorted(declared.items()):
                if name not in documented:
                    yield (path, line,
                           "--%s is accepted but undocumented: add it to "
                           "README.md" % name)

    _DECL = ('const std::vector<std::string>* v = '
             'new std::vector<std::string>{"input", "seed"};\n')
    selftests = (
        # Mention of an undeclared flag.
        ({"tools/a.cc": _DECL + 'const char* e = "pass --workers too";\n',
          "README.md": "--input --seed\n"}, 1),
        # Declared + mentioned + documented: clean.
        ({"tools/a.cc": _DECL + 'const char* e = "--input missing";\n',
          "README.md": "--input and --seed\n"}, 0),
        # Declared but missing from README.
        ({"tools/a.cc": _DECL, "README.md": "--input only\n"}, 1),
        # add({...}) declarations count; comments never count as mentions.
        ({"tools/b.cc": 'void f() { add({"top", "out"}); }\n'
                        "// usage: --nonexistent\n",
          "README.md": "--top --out\n"}, 0),
        # Without a README nothing can be documented; only direction 1 runs.
        ({"tools/a.cc": _DECL}, 0),
    )


class MetricsNamingRule(Rule):
    """Validates "fairrank_..." metric-name string literals against the
    Prometheus naming conventions MetricsRegistry::IsValidMetricName
    enforces at runtime — lint catches the typo before anything runs.

    A literal may carry a label block ("name{..."); only the part before
    the brace is the name. The bare "fairrank_" prefix constant is not a
    metric name and is skipped."""

    name = "metrics-naming"

    SCOPES = ("src/", "tools/", "bench/")
    SUFFIXES = ("_total", "_seconds", "_bytes", "_count", "_ratio", "_info")

    def check(self, tree):
        for path, ctx in sorted(tree.files.items()):
            if not path.startswith(self.SCOPES):
                continue
            for lit in re.finditer(STRING_LITERAL, ctx.text):
                content = lit.group(1)
                if not content.startswith("fairrank_"):
                    continue
                metric = content.split("{", 1)[0]
                if metric == "fairrank_":
                    continue  # The prefix constant, not a name.
                line = line_of(ctx.text, lit.start())
                if not re.fullmatch(r"[a-z][a-z0-9_]*[a-z0-9]", metric):
                    yield (path, line,
                           '"%s" is not snake_case ([a-z0-9_], no edge '
                           "underscores)" % metric)
                elif "__" in metric:
                    yield (path, line,
                           '"%s" doubles an underscore' % metric)
                elif not metric.endswith(self.SUFFIXES):
                    yield (path, line,
                           '"%s" lacks a unit/kind suffix (%s)'
                           % (metric, ", ".join(self.SUFFIXES)))

    selftests = (
        ({"src/a.cc": 'auto* c = Get("fairrank_audits_total");\n'}, 0),
        ({"bench/a.cc":
          'find("fairrank_http_request_duration_seconds{");\n'}, 0),
        ({"src/a.cc": 'const std::string prefix = "fairrank_";\n'}, 0),
        ({"src/a.cc": 'Get("fairrank_Audits_total");\n'}, 1),
        ({"src/a.cc": 'Get("fairrank_audits");\n'}, 1),
        ({"src/a.cc": 'Get("fairrank__audits_total");\n'}, 1),
        ({"src/a.cc": 'Get("fairrank_audits_total_");\n'}, 1),
        ({"tools/a.cc": 'Get("fairrank_audits-total");\n'}, 1),
        # tests/ spell invalid names on purpose; comments never match.
        ({"tests/a.cc": 'Get("fairrank_bad");\n'}, 0),
        ({"src/a.cc": '// mentions "fairrank_bad" in a comment\n'}, 0),
    )


class BenchJsonSchemaRule(Rule):
    """BENCH_*.json baselines: strict JSON, a bench name, required keys."""

    name = "bench-json-schema"

    REQUIRED_KEYS = {
        "server_load": ("clients", "duration_ms", "phases"),
        "trace_overhead": ("workers", "repetitions", "overhead_percent"),
        "scaling_millions": ("ingest_threads", "hardware_threads", "sizes",
                             "speedup_vs_serial"),
    }

    def check(self, tree):
        for path in sorted(tree.aux):
            base = os.path.basename(path)
            if not (base.startswith("BENCH_") and base.endswith(".json")):
                continue

            def reject_constant(token):
                raise ValueError("non-finite number %s" % token)

            try:
                data = json.loads(tree.aux[path],
                                  parse_constant=reject_constant)
            except ValueError as error:
                yield (path, 1, "not strict JSON: %s" % error)
                continue
            if not isinstance(data, dict):
                yield (path, 1, "top level must be a JSON object")
                continue
            bench = data.get("bench")
            if not isinstance(bench, str) or not bench:
                yield (path, 1,
                       'missing "bench": the baseline must name its '
                       "benchmark")
                continue
            for key in self.REQUIRED_KEYS.get(bench, ()):
                if key not in data:
                    yield (path, 1,
                           'bench "%s" baseline lost required key "%s"'
                           % (bench, key))

    selftests = (
        ({"BENCH_x.json":
          '{"bench": "server_load", "clients": 1, "duration_ms": 5, '
          '"phases": {}}'}, 0),
        ({"BENCH_x.json": '{"clients": 1}'}, 1),
        ({"BENCH_x.json": '{"bench": "server_load", "clients": 1}'}, 2),
        ({"BENCH_x.json": '{"bench": "other", "whatever": 1}'}, 0),
        ({"BENCH_x.json":
          '{"bench": "scaling_millions", "ingest_threads": 8, '
          '"hardware_threads": 1, "sizes": [], "speedup_vs_serial": 3.4}'}, 0),
        ({"BENCH_x.json": '{"bench": "scaling_millions"}'}, 4),
        ({"BENCH_x.json": '{"bench": "x", "v": NaN}'}, 1),
        ({"BENCH_x.json": "not json"}, 1),
        ({"OTHER_x.json": "not json"}, 0),
    )


RULES = (
    PatternRule(
        "rng-discipline",
        r"\b(?:std\s*::\s*)?s?rand\s*\(|\bstd\s*::\s*random_device\b",
        "'%s' — use common/rng (seeded, reproducible) instead",
        scope=in_library,
        exempt=("src/common/rng.h", "src/common/rng.cc"),
        selftests=(
            ({"src/a.cc": "int x = rand();\n"}, 1),
            ({"src/a.cc": "int x = std::rand();\nsrand(1);\n"}, 2),
            ({"src/common/rng.cc": "int x = rand();\n"}, 0),
            ({"tools/a.cc": "int x = rand();\n"}, 0),
            ({"src/a.cc": "int grand(int);\nint x = grand(2);\n"}, 0),
        )),
    PatternRule(
        "no-iostream",
        r"\bstd\s*::\s*(?:cout|cerr)\b|(?<![\w:])(?:f|w)?printf\s*\(",
        "'%s' — library code reports through Status/report strings",
        scope=in_library,
        selftests=(
            ({"src/a.cc": 'void f() { std::cout << 1; printf("x"); }\n'}, 2),
            ({"src/a.cc": "char b[8];\nint n = snprintf(b, 8, \"x\");\n"}, 0),
            ({"tools/a.cc": 'void f() { printf("ok"); }\n'}, 0),
        )),
    PatternRule(
        "no-naked-thread",
        r"\bstd\s*::\s*(?:thread|j?thread|async)\b|\bpthread_create\b",
        "'%s' — use common/parallel (ParallelFor/ParallelForEach) for "
        "concurrency",
        scope=lambda path: not path.startswith("tests/"),
        exempt=("src/common/parallel.cc",),
        selftests=(
            ({"src/a.cc": "std::thread t(f);\n"}, 1),
            ({"tools/a.cc": "auto r = std::async(f);\n"}, 1),
            ({"tests/a_test.cc": "std::thread t(f);\n"}, 0),
            ({"src/common/parallel.cc": "std::thread t(f);\n"}, 0),
        )),
    PatternRule(
        "no-sleep-in-server",
        r"\bsleep_(?:for|until)\b|\b(?:u|nano)?sleep\s*\(",
        "'%s' — the serving layer is event-driven; wait on poll timeouts, "
        "condition variables or Deadline instead",
        scope=in_server,
        selftests=(
            ({"src/server/a.cc":
              "std::this_thread::sleep_for(std::chrono::seconds(1));\n"}, 1),
            ({"src/server/a.cc": "usleep(100);\n"}, 1),
            ({"src/stats/a.cc": "usleep(100);\n"}, 0),
        )),
    PatternRule(
        "no-raw-parse-in-server",
        r"\b(?:std\s*::\s*)?(?:memcpy|memmove|strcpy|strncpy|strcat|sscanf|"
        r"atoi|atol|atof|strto(?:l|ul|ll|ull|d|f))\s*\(",
        "'%s' — raw byte/string parsing in the serving layer belongs in "
        "src/server/http.cc (fuzzed, corpus-covered); handlers consume "
        "parsed structs",
        scope=lambda path: in_server(path) and
        not path.endswith("/http.cc"),
        selftests=(
            ({"src/server/a.cc":
              "void f(char* d, const char* s, size_t n) "
              "{ std::memcpy(d, s, n); }\n"}, 1),
            ({"src/server/a.cc": 'int v = atoi(buf);\n'}, 1),
            ({"src/server/http.cc": "std::memcpy(d, s, n);\n"}, 0),
            # memset (sockaddr zeroing) is socket API, not parsing.
            ({"src/server/a.cc": "std::memset(&addr, 0, sizeof(addr));\n"},
             0),
            ({"src/data/a.cc": "std::memcpy(d, s, n);\n"}, 0),
        )),
    PatternRule(
        "no-fault-in-bench",
        r"#\s*include\s*\"common/fault_injection\.h\"",
        "'%s' — bench binaries must not link fault-injection hooks; chaos "
        "belongs in tests/",
        scope=lambda path: path.startswith("bench/"),
        view="raw",
        selftests=(
            ({"bench/a.cc": '#include "common/fault_injection.h"\n'}, 1),
            ({"tests/a.cc": '#include "common/fault_injection.h"\n'}, 0),
        )),
    PatternRule(
        "no-fault-in-bench",
        r"\bfault\s*::",
        "'%s' — bench binaries must not arm fault plans; an armed plan "
        "poisons BENCH_*.json baselines",
        scope=lambda path: path.startswith("bench/"),
        selftests=(
            ({"bench/a.cc": "fault::Arm(plan);\n"}, 1),
            ({"bench/a.cc": "// fault:: in a comment\n"}, 0),
        )),
    IncludeGuardRule(),
    SuppressionRule(),
    FlagSyncRule(),
    MetricsNamingRule(),
    BenchJsonSchemaRule(),
)


def run_rules(tree):
    findings = []
    for rule in RULES:
        for path, line, message in rule.check(tree):
            findings.append((path, line, rule.name, message))
    return sorted(findings)


def selftest():
    failures = 0
    for rule in RULES:
        if not rule.selftests:
            print("selftest: rule %s has no self-tests" % rule.name,
                  file=sys.stderr)
            failures += 1
            continue
        for case_index, (contents, expected) in enumerate(rule.selftests):
            tree = Tree.from_dict(contents)
            got = list(rule.check(tree))
            if len(got) != expected:
                print("selftest: %s case %d: expected %d finding(s), got %d:"
                      % (rule.name, case_index, expected, len(got)),
                      file=sys.stderr)
                for path, line, message in got:
                    print("  %s:%d: %s" % (path, line, message),
                          file=sys.stderr)
                failures += 1
    names = sorted(set(rule.name for rule in RULES))
    if failures == 0:
        print("lint.py selftest: %d rule(s) OK (%s)"
              % (len(names), ", ".join(names)))
        return 0
    print("lint.py selftest: %d failure(s)" % failures, file=sys.stderr)
    return 1


def main(argv):
    if "--selftest" in argv:
        return selftest()
    root = argv[1] if len(argv) > 1 else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("lint.py: no src/ under %s" % root, file=sys.stderr)
        return 2

    findings = run_rules(Tree.from_disk(root))
    for path, line, rule, message in findings:
        print("%s:%d: [%s] %s" % (path, line, rule, message))
    if findings:
        print("lint.py: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
