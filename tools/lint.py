#!/usr/bin/env python3
"""Project-specific lint rules the generic tools can't express.

Enforced over the C++ tree (fast: pure-python regex pass, < 5s):

  rng-discipline   No rand()/std::rand/srand/random_device outside
                   src/common/rng.* — all randomness flows through the
                   seeded, reproducible Rng so runs stay deterministic.
  no-iostream      No std::cout / std::cerr / printf-family output in src/
                   library code (snprintf into a buffer is fine). The
                   library reports through Status and report strings;
                   binaries under tools/, bench/, examples/ may print.
  no-naked-thread  No std::thread / std::async / pthread_create outside
                   src/common/parallel.cc — all concurrency (library code,
                   the suite scheduler, the src/server/ request executor,
                   tools/, bench/, examples/) goes through ParallelFor /
                   ParallelForEach so cancellation, deadlines and exception
                   capture stay in one audited place. fairauditd's
                   listener+worker pool is ParallelForEach(workers+1, ...)
                   for exactly this reason. Only tests may spawn threads
                   (stress tests race the cache on purpose).
  no-sleep-in-server
                   No sleep_for / sleep_until / usleep / nanosleep / sleep()
                   inside src/server/ — the serving layer must be
                   event-driven (poll timeouts, condition variables,
                   Deadline) so drain latency is bounded by real events,
                   never by a hard-coded nap that holds a worker hostage.
  no-fault-in-bench
                   bench/ binaries never include or call the test-only
                   fault-injection hooks (common/fault_injection.h,
                   fault::) — a benchmark that can be chaos-armed measures
                   the fault plan, not the system, and a stray armed plan
                   would silently poison checked-in BENCH_*.json baselines.
  include-guards   Headers use #ifndef FAIRRANK_<PATH>_H_ guards derived
                   from their path (never #pragma once), so a moved file
                   gets a stale-guard error instead of a silent collision.
  no-suppressions  No blanket NOLINT without a specific rule name, and no
                   FAIRRANK_NO_THREAD_SAFETY_ANALYSIS without a comment on
                   the preceding or same line explaining why.

Usage: python3 tools/lint.py [root]   (root defaults to the repo root)
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import os
import re
import sys

LIBRARY_DIRS = ("src",)
ALL_CPP_DIRS = ("src", "tests", "tools", "bench", "examples")
CPP_EXTENSIONS = (".h", ".cc")


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces (same length,
    so reported line numbers stay correct)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_files(root, dirs):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def finding(findings, path, lineno, rule, message):
    findings.append("%s:%d: [%s] %s" % (path, lineno, rule, message))


def check_pattern_rule(findings, path, code_text, rule, pattern, message,
                       exempt=()):
    if path.replace(os.sep, "/") in exempt:
        return
    for m in re.finditer(pattern, code_text):
        lineno = code_text.count("\n", 0, m.start()) + 1
        finding(findings, path, lineno, rule, message % m.group(0))


def check_include_guard(findings, path, raw_text):
    rel = path.replace(os.sep, "/")
    if not rel.startswith("src/") or not rel.endswith(".h"):
        return
    if re.search(r"^\s*#\s*pragma\s+once", raw_text, re.M):
        finding(findings, path, 1, "include-guards",
                "use an #ifndef guard, not #pragma once")
    expected = "FAIRRANK_" + re.sub(r"[/.]", "_", rel[len("src/"):]).upper() + "_"
    m = re.search(r"^\s*#\s*ifndef\s+(\S+)\s*\n\s*#\s*define\s+(\S+)", raw_text,
                  re.M)
    if m is None:
        finding(findings, path, 1, "include-guards",
                "missing #ifndef/#define include guard (expected %s)" % expected)
    elif m.group(1) != expected or m.group(2) != expected:
        lineno = raw_text.count("\n", 0, m.start()) + 1
        finding(findings, path, lineno, "include-guards",
                "guard %s does not match path (expected %s)"
                % (m.group(1), expected))


def check_suppressions(findings, path, raw_text):
    lines = raw_text.split("\n")
    for i, line in enumerate(lines, 1):
        m = re.search(r"NOLINT(?!NEXTLINE)(\(([^)]*)\))?", line)
        if m and not m.group(2):
            finding(findings, path, i, "no-suppressions",
                    "NOLINT must name the suppressed check, e.g. "
                    "NOLINT(bugprone-foo)")
        if "FAIRRANK_NO_THREAD_SAFETY_ANALYSIS" in line and \
                not path.endswith("thread_annotations.h"):
            prev = lines[i - 2] if i >= 2 else ""
            if "//" not in line and "//" not in prev:
                finding(findings, path, i, "no-suppressions",
                        "FAIRRANK_NO_THREAD_SAFETY_ANALYSIS needs a comment "
                        "explaining why the analysis cannot see the invariant")


def main(argv):
    root = argv[1] if len(argv) > 1 else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("lint.py: no src/ under %s" % root, file=sys.stderr)
        return 2

    findings = []
    for path in iter_files(root, ALL_CPP_DIRS):
        with open(os.path.join(root, path), encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments_and_strings(raw)
        rel = path.replace(os.sep, "/")
        in_library = rel.startswith("src/")

        if rel.startswith("src/server/"):
            check_pattern_rule(
                findings, path, code, "no-sleep-in-server",
                r"\bsleep_(?:for|until)\b|\b(?:u|nano)?sleep\s*\(",
                "'%s' — the serving layer is event-driven; wait on poll "
                "timeouts, condition variables or Deadline instead")
        if in_library:
            check_pattern_rule(
                findings, path, code, "rng-discipline",
                r"\b(?:std\s*::\s*)?s?rand\s*\(|\bstd\s*::\s*random_device\b",
                "'%s' — use common/rng (seeded, reproducible) instead",
                exempt=("src/common/rng.h", "src/common/rng.cc"))
            check_pattern_rule(
                findings, path, code, "no-iostream",
                r"\bstd\s*::\s*(?:cout|cerr)\b|(?<![\w:])(?:f|w)?printf\s*\(",
                "'%s' — library code reports through Status/report strings")
        if rel.startswith("bench/"):
            # The include is matched on RAW text (string contents are blanked
            # in `code`), the call sites on stripped code.
            check_pattern_rule(
                findings, path, raw, "no-fault-in-bench",
                r"#\s*include\s*\"common/fault_injection\.h\"",
                "'%s' — bench binaries must not link fault-injection hooks; "
                "chaos belongs in tests/")
            check_pattern_rule(
                findings, path, code, "no-fault-in-bench",
                r"\bfault\s*::",
                "'%s' — bench binaries must not arm fault plans; an armed "
                "plan poisons BENCH_*.json baselines")
        # Concurrency discipline covers everything but tests: tools, benches
        # and examples drive the suite scheduler and must inherit its
        # cancellation / exception capture rather than spawn naked threads.
        if not rel.startswith("tests/"):
            check_pattern_rule(
                findings, path, code, "no-naked-thread",
                r"\bstd\s*::\s*(?:thread|j?thread|async)\b|\bpthread_create\b",
                "'%s' — use common/parallel (ParallelFor/ParallelForEach) "
                "for concurrency",
                exempt=("src/common/parallel.cc",))

        check_include_guard(findings, path, raw)
        check_suppressions(findings, path, raw)

    for f in findings:
        print(f)
    if findings:
        print("lint.py: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
