// Statistical significance of audited unfairness (our extension): the
// paper's random functions still show avg EMD ~0.15-0.33 because finite
// random partitions always differ and the search maximizes over
// partitionings. The permutation test separates that sampling floor from
// genuine score-attribute association, and the bootstrap quantifies the
// estimate's stability.

#include <cstdio>

#include "bench_common.h"
#include "fairness/significance.h"
#include "marketplace/biased_scoring.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 2000);
  const size_t kIterations = 99;
  Table workers = MakeWorkers(n);
  FairnessAuditor auditor(&workers);

  std::vector<std::unique_ptr<ScoringFunction>> functions =
      MakePaperRandomFunctions();
  for (auto& fn : MakePaperBiasedFunctions(7)) {
    functions.push_back(std::move(fn));
  }

  std::printf(
      "=== Significance of audited unfairness (workers=%zu, %zu "
      "permutations) ===\n\n",
      n, kIterations);
  TextTable t;
  t.SetHeader({"function", "observed", "null mean", "p-value",
               "bootstrap 95% CI"});
  for (const auto& fn : functions) {
    AuditOptions options;
    options.algorithm = "balanced";
    StatusOr<AuditResult> audit = auditor.Audit(*fn, options);
    if (!audit.ok()) {
      std::fprintf(stderr, "%s\n", audit.status().ToString().c_str());
      return 1;
    }
    StatusOr<UnfairnessEvaluator> eval = UnfairnessEvaluator::Make(
        &workers, fn->ScoreAll(workers).value(), options.evaluator);
    if (!eval.ok()) return 1;
    StatusOr<PermutationResult> permutation = PermutationTestUnfairness(
        *eval, audit->partitioning, kIterations, /*seed=*/5);
    StatusOr<BootstrapResult> bootstrap =
        BootstrapUnfairness(*eval, audit->partitioning, kIterations,
                            /*seed=*/6);
    if (!permutation.ok() || !bootstrap.ok()) {
      std::fprintf(stderr, "significance computation failed\n");
      return 1;
    }
    // Stepwise append: chained operator+ trips GCC 12's -Wrestrict false
    // positive (PR105651) under -Werror.
    std::string ci = "[";
    ci += FormatDouble(bootstrap->ci_lo, 3);
    ci += ", ";
    ci += FormatDouble(bootstrap->ci_hi, 3);
    ci += "]";
    t.AddRow({fn->Name(), FormatDouble(permutation->observed, 3),
              FormatDouble(permutation->null_mean, 3),
              FormatDouble(permutation->p_value, 3), std::move(ci)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Expected: biased f6-f9 have p = 0.01 (the minimum with 99\n"
      "permutations) and observed far above the null mean. Random f1-f5\n"
      "sit near their null (the audit maximizes over partitionings, so\n"
      "their observed EMD is the sampling floor, not discrimination).\n");
  return 0;
}
