// Scaling study: runtime and unfairness of every paper algorithm as the
// worker population grows. Backs the paper's efficiency claims ("the larger
// the dataset, the more time it took for all algorithms to finish";
// balanced slowest) with a full curve rather than the two sizes of
// Tables 1-2, and adds the evaluator's thread knob.

#include <cstdio>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t kMax = SizeFromEnv("FAIRRANK_WORKERS", 50000);
  std::vector<size_t> sizes;
  for (size_t n : {size_t{500}, size_t{2000}, size_t{7300}, size_t{20000},
                   size_t{50000}}) {
    if (n <= kMax) sizes.push_back(n);
  }

  std::printf("=== Scaling: runtime vs population size (f1, seed %llu) ===\n\n",
              static_cast<unsigned long long>(kDataSeed));
  TextTable t;
  t.SetHeader({"workers", "algorithm", "avg EMD", "seconds"});
  for (size_t n : sizes) {
    Table workers = MakeWorkers(n);
    FairnessAuditor auditor(&workers);
    auto fn = MakeAlphaFunction("f1", 0.5);
    for (const std::string& algorithm : PaperAlgorithmNames()) {
      AuditOptions options;
      options.algorithm = algorithm;
      options.seed = 1;
      StatusOr<AuditResult> result = auditor.Audit(*fn, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      t.AddRow({std::to_string(n), algorithm,
                FormatDouble(result->unfairness, 3),
                FormatDouble(result->seconds, 3)});
    }
  }
  std::printf("%s\n", t.ToString().c_str());

  // Thread scaling of the evaluation itself on the largest size.
  const size_t n = sizes.back();
  Table workers = MakeWorkers(n);
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::printf("Evaluator thread scaling (%zu workers, full partitioning, "
              "%d hardware threads):\n",
              n, HardwareThreads());
  TextTable threads_table;
  threads_table.SetHeader({"threads", "avg EMD", "seconds"});
  for (int threads : {1, 2, 4, 8}) {
    EvaluatorOptions evaluator;
    evaluator.num_threads = threads;
    StatusOr<UnfairnessEvaluator> eval = UnfairnessEvaluator::Make(
        &workers, fn->ScoreAll(workers).value(), evaluator);
    if (!eval.ok()) {
      std::fprintf(stderr, "%s\n", eval.status().ToString().c_str());
      return 1;
    }
    StatusOr<std::unique_ptr<PartitioningAlgorithm>> algo =
        MakeAlgorithmByName("all-attributes");
    Partitioning p =
        (*algo)->Run(*eval, workers.schema().ProtectedIndices()).value();
    Stopwatch watch;
    double u = eval->AveragePairwiseUnfairness(p).value();
    threads_table.AddRow({std::to_string(threads), FormatDouble(u, 3),
                          FormatDouble(watch.ElapsedSeconds(), 3)});
  }
  std::printf("%s\n", threads_table.ToString().c_str());
  return 0;
}
