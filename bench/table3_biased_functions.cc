// Table 3: average EMD for 7300 workers under the biased-by-design
// functions f6..f9, for all five algorithms.
//
// Expected shapes (paper): balanced retrieves the highest average EMD
// (~0.8 for f6, splitting on gender only; gender+country for f7); all
// biased functions show much higher unfairness than the random f1..f5;
// unbalanced can underperform on f6/f7 because of its local stopping
// condition.
//
// Override the population size with FAIRRANK_WORKERS=<n>.

#include <cstdio>

#include "bench_common.h"
#include "marketplace/biased_scoring.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 7300);
  const uint64_t function_seed = 7;
  std::printf("workers=%zu seed=%llu function_seed=%llu\n\n", n,
              static_cast<unsigned long long>(kDataSeed),
              static_cast<unsigned long long>(function_seed));
  Table workers = MakeWorkers(n);
  auto functions = MakePaperBiasedFunctions(function_seed);
  RunAndPrintGrid("Table 3: 7300 workers, biased functions", workers,
                  functions, /*baseline_seed=*/3, /*print_times=*/false);

  // The paper reports which attributes balanced recovered per function.
  FairnessAuditor auditor(&workers);
  std::printf("Attributes recovered by balanced:\n");
  for (const auto& fn : functions) {
    AuditOptions options;
    options.algorithm = "balanced";
    StatusOr<AuditResult> result = auditor.Audit(*fn, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-36s -> %s\n", fn->Name().c_str(),
                result->attributes_used.empty()
                    ? "<none>"
                    : Join(result->attributes_used, ", ").c_str());
  }
  return 0;
}
