// Ablation (ours): the paper's future work asks about "other formulations
// and metrics for fairness instead of the Earth Mover's Distance". The
// evaluator takes any Divergence; this sweep audits f1 (random) and f6
// (biased) under every registered metric.

#include <cstdio>

#include "bench_common.h"
#include "marketplace/biased_scoring.h"
#include "stats/divergence.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 2000);
  Table workers = MakeWorkers(n);
  FairnessAuditor auditor(&workers);
  auto f1 = MakeAlphaFunction("f1 (alpha=0.5)", 0.5);
  auto f6 = MakeF6(7);

  std::printf("=== Ablation: divergence choice (workers=%zu) ===\n\n", n);
  TextTable t;
  t.SetHeader({"divergence", "f1 unfairness", "f6 unfairness",
               "f6 attributes recovered"});
  for (const std::string& name : KnownDivergenceNames()) {
    if (name == "emd-general") continue;  // Identical to emd, much slower.
    AuditOptions options;
    options.algorithm = "balanced";
    options.evaluator.divergence = name;
    StatusOr<AuditResult> r1 = auditor.Audit(*f1, options);
    StatusOr<AuditResult> r6 = auditor.Audit(*f6, options);
    if (!r1.ok() || !r6.ok()) {
      std::fprintf(stderr, "audit under %s failed\n", name.c_str());
      return 1;
    }
    t.AddRow({name, FormatDouble(r1->unfairness, 3),
              FormatDouble(r6->unfairness, 3),
              Join(r6->attributes_used, ", ")});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Expected: every metric separates f6 from f1 and recovers Gender for\n"
      "f6; the f6/f1 contrast ratio differs by metric (EMD is\n"
      "magnitude-aware, TV/KS saturate once supports separate).\n");
  return 0;
}
