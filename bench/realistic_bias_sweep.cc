// Extension bench: audits on a *realistic* correlated population (modeled
// on the TaskRabbit/Fiverr findings of Hannak et al., the paper's reference
// [4]) instead of the paper's uniform simulation. Sweeps the strength of
// the demographic rating bias and reports what each audit channel sees:
// the maximized partition-search unfairness, the restricted gender and
// ethnicity audits, and the single-attribute eta^2 screen.

#include <cstdio>

#include "bench_common.h"
#include "data/profile.h"
#include "marketplace/realistic.h"
#include "marketplace/worker.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 5000);
  auto f5 = MakeAlphaFunction("f5 (ApprovalRate only)", 0.0);

  std::printf(
      "=== Realistic population: rating-bias sweep (workers=%zu) ===\n\n", n);
  TextTable t;
  t.SetHeader({"bias", "full audit", "gender+ethnicity audit",
               "eta^2 gender", "eta^2 ethnicity"});
  for (double bias : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    RealisticGeneratorOptions gen;
    gen.num_workers = n;
    gen.seed = kDataSeed;
    gen.bias_strength = bias;
    StatusOr<Table> workers = GenerateRealisticWorkers(gen);
    if (!workers.ok()) {
      std::fprintf(stderr, "%s\n", workers.status().ToString().c_str());
      return 1;
    }
    FairnessAuditor auditor(&workers.value());

    AuditOptions full;
    full.algorithm = "balanced";
    StatusOr<AuditResult> full_audit = auditor.Audit(*f5, full);
    AuditOptions restricted = full;
    restricted.protected_attributes = {worker_attrs::kGender,
                                       worker_attrs::kEthnicity};
    StatusOr<AuditResult> restricted_audit = auditor.Audit(*f5, restricted);
    if (!full_audit.ok() || !restricted_audit.ok()) {
      std::fprintf(stderr, "audit failed\n");
      return 1;
    }

    StatusOr<std::vector<double>> scores = f5->ScoreAll(*workers);
    StatusOr<std::vector<ScoreAssociation>> associations =
        ScoreAssociations(*workers, *scores);
    if (!associations.ok()) return 1;
    double eta_gender = 0.0;
    double eta_ethnicity = 0.0;
    for (const ScoreAssociation& a : *associations) {
      if (a.attribute == worker_attrs::kGender) eta_gender = a.eta_squared;
      if (a.attribute == worker_attrs::kEthnicity) {
        eta_ethnicity = a.eta_squared;
      }
    }
    t.AddRow({FormatDouble(bias, 2), FormatDouble(full_audit->unfairness, 3),
              FormatDouble(restricted_audit->unfairness, 3),
              FormatDouble(eta_gender, 3), FormatDouble(eta_ethnicity, 3)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Expected: the restricted audit and both eta^2 columns grow\n"
      "monotonically with the injected rating bias. The full maximized\n"
      "audit barely moves: its ~0.1 sampling floor (maximizing over all\n"
      "six attributes) swamps the moderate rating penalties — exactly why\n"
      "the significance tooling (bench/significance_check) matters before\n"
      "reading the maximized number as discrimination.\n");
  return 0;
}
