// scaling_millions — the million-worker scaling trajectory, measured.
//
// The paper audits 7,300 workers; the cell-store sufficient statistic is
// what carries the audit past that ceiling (DESIGN.md §12). This harness
// synthesizes 1M/5M/10M workers via marketplace/generator, then for each
// population measures the only O(n) stage left — ingest — three ways:
//
//   serial:      the CellStore::AddRow loop (per-row schema lookups), the
//                path tests and small batches use.
//   parallel 1t: BuildCellStoreParallel with one thread — the sharded fast
//                path (precomputed columns, dense mixed-radix cells) minus
//                any parallelism.
//   parallel Nt: BuildCellStoreParallel with FAIRRANK_INGEST_THREADS
//                (default 8) shards.
//
// For every size the sharded store is verified against serial ingest —
// identical cell/observation counts, audit unfairness within 1e-9, same
// partition count — and the harness dies if they diverge: a scaling number
// for a broken equivalence would be worthless. (tests/aggregate_test.cc
// enforces the same property bit-identically.)
//
// Prints a table and writes BENCH_scaling_millions.json with per-size rows
// and the headline `speedup_vs_serial` (parallel Nt vs serial at the
// largest size). `hardware_threads` records the machine the numbers came
// from — on a single-core runner the speedup is carried by the fast path
// alone, and thread scaling adds on top on real hardware.
//
// `--smoke` shrinks to one ~100k-worker size (the CI artifact job);
// FAIRRANK_WORKERS=<n> pins a single custom size.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "fairness/aggregate.h"
#include "fairness/report.h"
#include "marketplace/biased_scoring.h"

namespace fairrank {
namespace {

using bench::kDataSeed;
using bench::MakeWorkers;
using bench::SizeFromEnv;

struct SizeResult {
  size_t workers = 0;
  double serial_rows_per_sec = 0.0;
  double parallel_1t_rows_per_sec = 0.0;
  double parallel_nt_rows_per_sec = 0.0;
  double speedup_vs_serial = 0.0;
  double audit_seconds = 0.0;
  double unfairness = 0.0;
  size_t num_cells = 0;
  double max_abs_unfairness_delta = 0.0;
};

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "scaling_millions: %s: %s\n", what,
               status.ToString().c_str());
  std::exit(1);
}

SizeResult RunOneSize(size_t n, int threads) {
  SizeResult out;
  out.workers = n;
  std::printf("generating %zu workers (seed %llu)...\n", n,
              static_cast<unsigned long long>(kDataSeed));
  Table workers = MakeWorkers(n);
  auto f6 = MakeF6(kDataSeed);
  StatusOr<std::vector<double>> scores = f6->ScoreAll(workers);
  if (!scores.ok()) Die("scoring failed", scores.status());

  // Serial baseline: the AddRow loop over the validated store.
  StatusOr<CellStore> serial = CellStore::Make(
      [&workers] {
        std::vector<AttributeSpec> specs;
        for (size_t i : workers.schema().ProtectedIndices()) {
          specs.push_back(workers.schema().attribute(i));
        }
        return specs;
      }(),
      10, 0.0, 1.0);
  if (!serial.ok()) Die("store construction failed", serial.status());
  Stopwatch serial_watch;
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    Status added = serial->AddRow(workers, row, (*scores)[row]);
    if (!added.ok()) Die("serial ingest failed", added);
  }
  double serial_seconds = serial_watch.ElapsedSeconds();
  out.serial_rows_per_sec =
      serial_seconds > 0 ? static_cast<double>(n) / serial_seconds : 0;

  // Sharded ingest, 1 thread then N threads.
  CellStoreIngestOptions one_thread;
  one_thread.num_threads = 1;
  Stopwatch one_watch;
  StatusOr<CellStore> parallel_1t =
      BuildCellStoreParallel(workers, *scores, one_thread);
  double one_seconds = one_watch.ElapsedSeconds();
  if (!parallel_1t.ok()) Die("1-thread ingest failed", parallel_1t.status());
  out.parallel_1t_rows_per_sec =
      one_seconds > 0 ? static_cast<double>(n) / one_seconds : 0;

  CellStoreIngestOptions n_threads;
  n_threads.num_threads = threads;
  Stopwatch n_watch;
  StatusOr<CellStore> parallel_nt =
      BuildCellStoreParallel(workers, *scores, n_threads);
  double n_seconds = n_watch.ElapsedSeconds();
  if (!parallel_nt.ok()) Die("N-thread ingest failed", parallel_nt.status());
  out.parallel_nt_rows_per_sec =
      n_seconds > 0 ? static_cast<double>(n) / n_seconds : 0;
  out.speedup_vs_serial = n_seconds > 0 ? serial_seconds / n_seconds : 0;

  // Equivalence gate: the numbers are only worth printing if the sharded
  // store reproduces the serial audit.
  if (parallel_nt->num_cells() != serial->num_cells() ||
      parallel_nt->num_observations() != serial->num_observations()) {
    std::fprintf(stderr,
                 "scaling_millions: sharded store diverged from serial "
                 "(%zu/%zu cells, %zu/%zu observations)\n",
                 parallel_nt->num_cells(), serial->num_cells(),
                 parallel_nt->num_observations(), serial->num_observations());
    std::exit(1);
  }
  StatusOr<AggregateAuditResult> serial_audit = AuditAggregateBalanced(*serial);
  if (!serial_audit.ok()) Die("serial audit failed", serial_audit.status());
  Stopwatch audit_watch;
  StatusOr<AggregateAuditResult> audit = AuditAggregateBalanced(*parallel_nt);
  out.audit_seconds = audit_watch.ElapsedSeconds();
  if (!audit.ok()) Die("audit failed", audit.status());
  out.max_abs_unfairness_delta =
      std::fabs(audit->unfairness - serial_audit->unfairness);
  if (out.max_abs_unfairness_delta > 1e-9 ||
      audit->partitions.size() != serial_audit->partitions.size()) {
    std::fprintf(stderr,
                 "scaling_millions: sharded audit diverged from serial "
                 "(delta %.3g, %zu vs %zu partitions)\n",
                 out.max_abs_unfairness_delta, audit->partitions.size(),
                 serial_audit->partitions.size());
    std::exit(1);
  }
  out.unfairness = audit->unfairness;
  out.num_cells = parallel_nt->num_cells();
  return out;
}

}  // namespace
}  // namespace fairrank

int main(int argc, char** argv) {
  using namespace fairrank;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int threads =
      static_cast<int>(SizeFromEnv("FAIRRANK_INGEST_THREADS", 8));
  std::vector<size_t> sizes;
  const size_t override_n = SizeFromEnv("FAIRRANK_WORKERS", 0);
  if (override_n > 0) {
    sizes = {override_n};
  } else if (smoke) {
    sizes = {100000};
  } else {
    sizes = {1000000, 5000000, 10000000};
  }

  std::printf("ingest_threads=%d hardware_threads=%d%s\n", threads,
              HardwareThreads(), smoke ? " (smoke)" : "");
  std::vector<SizeResult> results;
  for (size_t n : sizes) results.push_back(RunOneSize(n, threads));

  TextTable table;
  table.SetHeader({"workers", "serial rows/s", "1t rows/s",
                   std::to_string(threads) + "t rows/s", "speedup",
                   "audit s", "cells"});
  for (const SizeResult& r : results) {
    table.AddRow({std::to_string(r.workers),
                  FormatDouble(r.serial_rows_per_sec, 0),
                  FormatDouble(r.parallel_1t_rows_per_sec, 0),
                  FormatDouble(r.parallel_nt_rows_per_sec, 0),
                  FormatDouble(r.speedup_vs_serial, 2),
                  FormatDouble(r.audit_seconds, 3),
                  std::to_string(r.num_cells)});
  }
  std::printf("%s", table.ToString().c_str());

  std::string json = "{";
  json += "\"bench\":\"scaling_millions\",";
  json += "\"smoke\":";
  json += smoke ? "true" : "false";
  json += ",";
  json += "\"ingest_threads\":" + std::to_string(threads) + ",";
  json += "\"hardware_threads\":" + std::to_string(HardwareThreads()) + ",";
  json += "\"speedup_vs_serial\":" +
          FormatDouble(results.back().speedup_vs_serial, 2) + ",";
  json += "\"sizes\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    if (i > 0) json += ",";
    json += "{\"workers\":" + std::to_string(r.workers) + ",";
    json += "\"serial_rows_per_sec\":" +
            FormatDouble(r.serial_rows_per_sec, 0) + ",";
    json += "\"parallel_1t_rows_per_sec\":" +
            FormatDouble(r.parallel_1t_rows_per_sec, 0) + ",";
    json += "\"parallel_rows_per_sec\":" +
            FormatDouble(r.parallel_nt_rows_per_sec, 0) + ",";
    json += "\"speedup_vs_serial\":" +
            FormatDouble(r.speedup_vs_serial, 2) + ",";
    json += "\"audit_seconds\":" + FormatDouble(r.audit_seconds, 4) + ",";
    json += "\"unfairness\":" + FormatDouble(r.unfairness, 6) + ",";
    json += "\"num_cells\":" + std::to_string(r.num_cells) + ",";
    json += "\"max_abs_unfairness_delta\":" +
            FormatDouble(r.max_abs_unfairness_delta, 12) + "}";
  }
  json += "]}";

  const char* out_path = "BENCH_scaling_millions.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "scaling_millions: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "%s\n", json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
