// Table 2: average EMD and runtime for 7300 workers (the estimated number
// of concurrently-active Amazon Mechanical Turk workers) under f1..f5.
//
// Expected shapes (paper): all algorithms converge to (nearly) the full
// partitioning, so the average EMDs coincide across algorithms; f4/f5
// remain the most unfair; runtimes grow with the dataset size, balanced
// slowest.
//
// Override the population size with FAIRRANK_WORKERS=<n>; run the grid's
// cells on a parallel scheduler with FAIRRANK_SUITE_THREADS=<n> (the
// printed summary reports the wall-vs-serial-equivalent speedup).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 7300);
  std::printf("workers=%zu seed=%llu\n\n", n,
              static_cast<unsigned long long>(kDataSeed));
  Table workers = MakeWorkers(n);
  auto functions = MakePaperRandomFunctions();
  RunAndPrintGrid("Table 2: 7300 workers, random functions", workers,
                  functions, /*baseline_seed=*/2, /*print_times=*/true);
  return 0;
}
