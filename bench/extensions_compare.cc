// Extension bench: the two search strategies this library adds beyond the
// paper — beam (top-down with width > 1 and best-so-far tracking) and merge
// (bottom-up agglomerative over the full partitioning) — against the
// paper's algorithms, on both the random and the biased-by-design
// functions.
//
// The interesting column is f6/f7: `merge` can express {all favored cells,
// all disfavored cells}, a partitioning outside every tree algorithm's
// space, and lands near the two-cluster optimum where all-attributes is
// stuck at a diluted average.

#include <cstdio>

#include "bench_common.h"
#include "marketplace/biased_scoring.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 2000);
  Table workers = MakeWorkers(n);

  std::vector<std::unique_ptr<ScoringFunction>> functions =
      MakePaperRandomFunctions();
  for (auto& fn : MakePaperBiasedFunctions(7)) {
    functions.push_back(std::move(fn));
  }
  std::vector<const ScoringFunction*> borrowed;
  for (const auto& fn : functions) borrowed.push_back(fn.get());

  AuditSuite suite(&workers);
  SuiteOptions options;
  options.algorithms = {"balanced", "unbalanced", "all-attributes", "beam",
                        "merge"};
  options.seed = 4;
  options.num_threads = SuiteThreadsFromEnv();
  StatusOr<SuiteResult> result = suite.Run(borrowed, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Extensions vs paper algorithms (workers=%zu) ===\n\n", n);
  std::printf("Average EMD\n%s\n", FormatSuiteUnfairness(*result).c_str());
  std::printf("time (in secs)\n%s\n", FormatSuiteRuntime(*result).c_str());
  std::printf(
      "Expected: beam >= balanced everywhere (superset search with\n"
      "best-so-far); merge >= all-attributes everywhere and far ahead on\n"
      "f6/f7 where the optimum is a union of cells across tree branches;\n"
      "merge pays the largest runtime (full pairwise matrix plus a\n"
      "trajectory of k-2 merges).\n");
  return 0;
}
