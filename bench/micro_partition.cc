// Micro benchmarks: partition splitting, histogram building per partition,
// average-pairwise evaluation, and end-to-end algorithm runs at several
// population sizes — the cost drivers behind the runtime columns of
// Tables 1 and 2.

#include <benchmark/benchmark.h>

#include "fairness/registry.h"
#include "fairness/splitter.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table MakeWorkers(size_t n) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = 42;
  return GenerateWorkers(options).value();
}

UnfairnessEvaluator MakeEval(const Table& workers) {
  auto fn = MakeAlphaFunction("f1", 0.5);
  return UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                   EvaluatorOptions())
      .value();
}

void BM_SplitPartition(benchmark::State& state) {
  Table workers = MakeWorkers(static_cast<size_t>(state.range(0)));
  Partition root = MakeRootPartition(workers.num_rows());
  size_t gender = workers.schema().FindIndex(worker_attrs::kGender).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitPartition(workers, root, gender));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SplitPartition)->Arg(500)->Arg(7300)->Arg(50000);

void BM_SplitAllFullTree(benchmark::State& state) {
  Table workers = MakeWorkers(static_cast<size_t>(state.range(0)));
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  for (auto _ : state) {
    Partitioning current{MakeRootPartition(workers.num_rows())};
    for (size_t attr : attrs) current = SplitAll(workers, current, attr);
    benchmark::DoNotOptimize(current.size());
  }
}
BENCHMARK(BM_SplitAllFullTree)->Arg(500)->Arg(7300);

void BM_AveragePairwiseUnfairness(benchmark::State& state) {
  Table workers = MakeWorkers(7300);
  UnfairnessEvaluator eval = MakeEval(workers);
  // Partitioning with state.range(0) partitions (split on enough attrs).
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  Partitioning p{MakeRootPartition(workers.num_rows())};
  for (size_t attr : attrs) {
    if (static_cast<int64_t>(p.size()) >= state.range(0)) break;
    p = SplitAll(workers, p, attr);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.AveragePairwiseUnfairness(p).value());
  }
  state.counters["partitions"] = static_cast<double>(p.size());
}
BENCHMARK(BM_AveragePairwiseUnfairness)->Arg(2)->Arg(6)->Arg(30)->Arg(300);

void BM_Algorithm(benchmark::State& state, const std::string& name) {
  Table workers = MakeWorkers(static_cast<size_t>(state.range(0)));
  UnfairnessEvaluator eval = MakeEval(workers);
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  AlgorithmConfig config;
  config.seed = 1;
  for (auto _ : state) {
    auto algo = MakeAlgorithmByName(name, config).value();
    benchmark::DoNotOptimize(algo->Run(eval, attrs).value());
  }
}
BENCHMARK_CAPTURE(BM_Algorithm, balanced, "balanced")->Arg(500)->Arg(7300);
BENCHMARK_CAPTURE(BM_Algorithm, unbalanced, "unbalanced")->Arg(500)->Arg(7300);
BENCHMARK_CAPTURE(BM_Algorithm, all_attributes, "all-attributes")
    ->Arg(500)
    ->Arg(7300);

}  // namespace
}  // namespace fairrank

BENCHMARK_MAIN();
