#ifndef FAIRRANK_BENCH_BENCH_COMMON_H_
#define FAIRRANK_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure harnesses. Each harness regenerates
// one table or figure of the paper: same rows, same columns, printed as an
// aligned text table. Absolute EMD values depend on the random data seed and
// runtimes on the machine; the *shapes* (who wins, which functions are most
// unfair) are what EXPERIMENTS.md tracks.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "fairness/auditor.h"
#include "fairness/report.h"
#include "fairness/suite.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"

namespace fairrank {
namespace bench {

/// Default seed for every harness; printed so runs are reproducible.
inline constexpr uint64_t kDataSeed = 20190326;  // EDBT 2019 opening day.

/// Reads a size_t override from the environment, e.g. FAIRRANK_WORKERS=500
/// lets CI run the 7300-worker harness at a smaller scale.
inline size_t SizeFromEnv(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  int64_t parsed = 0;
  if (!ParseInt64(value, &parsed) || parsed <= 0) return fallback;
  return static_cast<size_t>(parsed);
}

/// Generates the paper's uniform worker population.
inline Table MakeWorkers(size_t n, uint64_t seed = kDataSeed) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  StatusOr<Table> table = GenerateWorkers(options);
  if (!table.ok()) {
    std::fprintf(stderr, "worker generation failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(table).value();
}

/// Suite worker threads: FAIRRANK_SUITE_THREADS=4 dispatches the grid's
/// cells onto 4 scheduler threads (default 1 = serial, the reproducible
/// paper-faithful configuration).
inline int SuiteThreadsFromEnv() {
  return static_cast<int>(SizeFromEnv("FAIRRANK_SUITE_THREADS", 1));
}

/// Prints the suite-level rollup: exact aggregate cache counters (never
/// double-counted under column-shared caches), total search work, and the
/// wall-vs-serial-equivalent speedup of the parallel scheduler — the
/// observability lines EXPERIMENTS.md quotes.
inline void PrintCacheSummary(const SuiteResult& result) {
  std::printf("%s\n", FormatSuiteSummary(result).c_str());
}

/// Runs the paper's algorithm grid via AuditSuite and prints it in the
/// paper's layout: the "Average EMD" sub-table and, for Tables 1/2, the
/// "time (in secs)" sub-table. Returns the grid for further assertions.
inline SuiteResult RunAndPrintGrid(
    const std::string& title, const Table& workers,
    const std::vector<std::unique_ptr<ScoringFunction>>& functions,
    uint64_t baseline_seed, bool print_times) {
  AuditSuite suite(&workers);
  std::vector<const ScoringFunction*> borrowed;
  borrowed.reserve(functions.size());
  for (const auto& fn : functions) borrowed.push_back(fn.get());
  SuiteOptions options;
  options.seed = baseline_seed;
  options.num_threads = SuiteThreadsFromEnv();
  StatusOr<SuiteResult> result = suite.Run(borrowed, options);
  if (!result.ok()) {
    std::fprintf(stderr, "suite failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("=== %s ===\n\n", title.c_str());
  if (options.num_threads != 1) {
    std::printf("suite threads: %d\n\n", options.num_threads);
  }
  std::printf("Average EMD\n%s\n", FormatSuiteUnfairness(*result).c_str());
  if (print_times) {
    std::printf("time (in secs)\n%s\n", FormatSuiteRuntime(*result).c_str());
  }
  PrintCacheSummary(*result);
  return std::move(result).value();
}

}  // namespace bench
}  // namespace fairrank

#endif  // FAIRRANK_BENCH_BENCH_COMMON_H_
