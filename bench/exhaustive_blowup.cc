// Evaluation note: "the exhaustive algorithm failed to terminate after
// running for two days with only 6 attributes". This harness shows why:
// it counts the hierarchical-partitioning space as attributes are added
// (capped at 10M) and times bounded exhaustive runs while they remain
// feasible.

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "fairness/exhaustive.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 500);
  Table workers = MakeWorkers(n);
  auto fn = MakeAlphaFunction("f1", 0.5);
  StatusOr<UnfairnessEvaluator> eval_or = UnfairnessEvaluator::Make(
      &workers, fn->ScoreAll(workers).value(), EvaluatorOptions());
  if (!eval_or.ok()) {
    std::fprintf(stderr, "%s\n", eval_or.status().ToString().c_str());
    return 1;
  }
  const UnfairnessEvaluator& eval = *eval_or;
  std::vector<size_t> all = workers.schema().ProtectedIndices();

  std::printf("=== Exhaustive search blow-up (workers=%zu) ===\n\n", n);
  const uint64_t kCountCap = 2'000'000;
  {
    TextTable t;
    t.SetHeader({"#attributes", "hierarchical partitionings"});
    for (size_t k = 1; k <= all.size(); ++k) {
      std::vector<size_t> attrs(all.begin(),
                                all.begin() + static_cast<ptrdiff_t>(k));
      uint64_t count = CountHierarchicalPartitionings(eval, attrs, kCountCap);
      t.AddRow({std::to_string(k), count >= kCountCap
                                       ? ">= " + std::to_string(kCountCap)
                                       : std::to_string(count)});
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  std::printf("Bounded exhaustive runs (budget 200k partitionings):\n");
  {
    TextTable t;
    t.SetHeader({"#attributes", "status", "best avg EMD", "seconds"});
    for (size_t k = 1; k <= all.size(); ++k) {
      std::vector<size_t> attrs(all.begin(),
                                all.begin() + static_cast<ptrdiff_t>(k));
      ExhaustiveOptions options;
      options.max_partitionings = 200'000;
      options.fallback_to_beam = false;  // Time the raw enumeration only.
      auto algo = MakeExhaustiveAlgorithm(options);
      Stopwatch watch;
      StatusOr<SearchResult> result =
          algo->Run(eval, attrs, ExecutionContext::Unbounded());
      double seconds = watch.ElapsedSeconds();
      if (result.ok() && !result->truncated) {
        double avg = eval.AveragePairwiseUnfairness(result->partitioning)
                         .value_or(0.0);
        t.AddRow({std::to_string(k), "completed", FormatDouble(avg, 3),
                  FormatDouble(seconds, 3)});
      } else {
        t.AddRow({std::to_string(k), "budget exhausted", "-",
                  FormatDouble(seconds, 3)});
        break;  // Everything beyond this k only gets worse.
      }
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  return 0;
}
