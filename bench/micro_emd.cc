// Micro benchmarks: EMD implementations and the other divergences across
// histogram resolutions. The closed-form 1-D EMD is what the partition
// search calls in its inner loop; the transportation-solver EMD is the
// general-ground-distance cross-check.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "stats/divergence.h"
#include "stats/emd.h"
#include "stats/histogram.h"
#include "stats/quantile_sketch.h"

namespace fairrank {
namespace {

std::pair<Histogram, Histogram> RandomHistograms(int bins, int samples,
                                                 uint64_t seed) {
  Rng rng(seed);
  Histogram a(bins, 0.0, 1.0);
  Histogram b(bins, 0.0, 1.0);
  for (int i = 0; i < samples; ++i) {
    a.Add(rng.NextDouble());
    b.Add(rng.NextDouble());
  }
  return {a, b};
}

void BM_Emd1D(benchmark::State& state) {
  auto [a, b] = RandomHistograms(static_cast<int>(state.range(0)), 1000, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Emd1D(a, b).value());
  }
}
BENCHMARK(BM_Emd1D)->Arg(10)->Arg(20)->Arg(50)->Arg(100)->Arg(500);

void BM_EmdGeneralTransportation(benchmark::State& state) {
  auto [a, b] = RandomHistograms(static_cast<int>(state.range(0)), 1000, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmdGeneral1DCost(a, b).value());
  }
}
BENCHMARK(BM_EmdGeneralTransportation)->Arg(10)->Arg(20)->Arg(50);

void BM_EmdThresholded(benchmark::State& state) {
  auto [a, b] = RandomHistograms(static_cast<int>(state.range(0)), 1000, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmdThresholded(a, b, 0.3).value());
  }
}
BENCHMARK(BM_EmdThresholded)->Arg(10)->Arg(20);

void BM_Divergence(benchmark::State& state,
                   const std::string& name) {
  auto divergence = MakeDivergenceByName(name).value();
  auto [a, b] = RandomHistograms(10, 1000, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(divergence->Distance(a, b).value());
  }
}
BENCHMARK_CAPTURE(BM_Divergence, js, "js");
BENCHMARK_CAPTURE(BM_Divergence, kl, "kl");
BENCHMARK_CAPTURE(BM_Divergence, tv, "tv");
BENCHMARK_CAPTURE(BM_Divergence, ks, "ks");
BENCHMARK_CAPTURE(BM_Divergence, hellinger, "hellinger");

void BM_GkSketchInsert(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> values(100000);
  for (double& v : values) v = rng.NextDouble();
  size_t i = 0;
  GkSketch sketch(0.01);
  for (auto _ : state) {
    sketch.Insert(values[i]);
    i = (i + 1) % values.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GkSketchInsert);

void BM_EmdFromSketches(benchmark::State& state) {
  Rng rng(13);
  GkSketch a(0.01);
  GkSketch b(0.01);
  for (int i = 0; i < 50000; ++i) {
    a.Insert(rng.UniformDouble(0.0, 0.6));
    b.Insert(rng.UniformDouble(0.4, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmdFromSketches(a, b, 256).value());
  }
}
BENCHMARK(BM_EmdFromSketches);

void BM_HistogramBuild(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) v = rng.NextDouble();
  for (auto _ : state) {
    Histogram h(10, 0.0, 1.0);
    for (double v : values) h.Add(v);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramBuild)->Arg(500)->Arg(7300)->Arg(50000);

}  // namespace
}  // namespace fairrank

BENCHMARK_MAIN();
