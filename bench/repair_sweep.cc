// Extension bench: the paper's future work is "repairing bias in the
// context of ranking". For each biased function f6..f9 this harness audits
// with balanced, repairs the scores on the audited partitioning with each
// strategy, and reports the fairness/utility trade-off.

#include <cstdio>

#include "bench_common.h"
#include "marketplace/biased_scoring.h"
#include "repair/repair.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 2000);
  Table workers = MakeWorkers(n);
  FairnessAuditor auditor(&workers);

  std::vector<std::unique_ptr<RepairStrategy>> strategies;
  strategies.push_back(MakeQuantileRepair());
  strategies.push_back(MakeAffineRepair());
  strategies.push_back(MakeInterpolationRepair(0.5));

  std::printf("=== Repair sweep (workers=%zu) ===\n\n", n);
  TextTable t;
  t.SetHeader({"function", "repair", "unfairness before", "after",
               "mean |delta score|", "rank correlation"});
  for (const auto& fn : MakePaperBiasedFunctions(7)) {
    AuditOptions options;
    options.algorithm = "balanced";
    StatusOr<AuditResult> audit = auditor.Audit(*fn, options);
    if (!audit.ok()) {
      std::fprintf(stderr, "%s\n", audit.status().ToString().c_str());
      return 1;
    }
    std::vector<double> scores = fn->ScoreAll(workers).value();
    for (const auto& strategy : strategies) {
      StatusOr<RepairEvaluation> eval =
          EvaluateRepair(workers, audit->partitioning, scores, *strategy,
                         EvaluatorOptions());
      if (!eval.ok()) {
        std::fprintf(stderr, "%s\n", eval.status().ToString().c_str());
        return 1;
      }
      t.AddRow({fn->Name(), strategy->Name(),
                FormatDouble(eval->unfairness_before, 3),
                FormatDouble(eval->unfairness_after, 3),
                FormatDouble(eval->mean_score_change, 3),
                FormatDouble(eval->rank_correlation, 3)});
    }
  }
  std::printf("%s\n", t.ToString().c_str());

  // Lambda sweep on f6: the fairness/utility frontier.
  std::printf("Interpolation frontier on f6:\n");
  TextTable frontier;
  frontier.SetHeader({"lambda", "unfairness after", "rank correlation"});
  auto f6 = MakeF6(13);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult audit = auditor.Audit(*f6, options).value();
  std::vector<double> scores = f6->ScoreAll(workers).value();
  for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto strategy = MakeInterpolationRepair(lambda);
    RepairEvaluation eval =
        EvaluateRepair(workers, audit.partitioning, scores, *strategy,
                       EvaluatorOptions())
            .value();
    frontier.AddRow({FormatDouble(lambda, 2),
                     FormatDouble(eval.unfairness_after, 3),
                     FormatDouble(eval.rank_correlation, 3)});
  }
  std::printf("%s\n", frontier.ToString().c_str());
  std::printf(
      "Expected: quantile repair drives unfairness to ~0 at the cost of\n"
      "global rank reshuffling; affine gets close; the interpolation\n"
      "frontier trades the two monotonically in lambda.\n");
  return 0;
}
