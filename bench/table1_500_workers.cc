// Table 1: average EMD and runtime for 500 workers under the five random
// linear scoring functions f1..f5, for all five algorithms.
//
// Expected shapes (paper): f4/f5 (single observed attribute) show the
// highest average EMD; unbalanced/balanced match or beat the baselines;
// balanced is the slowest algorithm.
//
// Override the population size with FAIRRANK_WORKERS=<n>; run the grid's
// cells on a parallel scheduler with FAIRRANK_SUITE_THREADS=<n> (the
// printed summary reports the wall-vs-serial-equivalent speedup).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 500);
  std::printf("workers=%zu seed=%llu\n\n", n,
              static_cast<unsigned long long>(kDataSeed));
  Table workers = MakeWorkers(n);
  auto functions = MakePaperRandomFunctions();
  RunAndPrintGrid("Table 1: 500 workers, random functions", workers,
                  functions, /*baseline_seed=*/1, /*print_times=*/true);
  return 0;
}
