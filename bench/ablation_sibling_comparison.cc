// Ablation (ours): Algorithm 2's averageEMD(children, siblings, f) is
// ambiguous in the paper; DESIGN.md documents the two readings we
// implement. This sweep runs unbalanced under both on the random and biased
// functions and reports how much the choice matters.

#include <cstdio>

#include "bench_common.h"
#include "marketplace/biased_scoring.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 2000);
  Table workers = MakeWorkers(n);
  FairnessAuditor auditor(&workers);

  std::vector<std::unique_ptr<ScoringFunction>> functions =
      MakePaperRandomFunctions();
  for (auto& fn : MakePaperBiasedFunctions(7)) {
    functions.push_back(std::move(fn));
  }

  std::printf(
      "=== Ablation: Algorithm 2 sibling-comparison reading (workers=%zu) "
      "===\n\n",
      n);
  TextTable t;
  t.SetHeader({"function", "child-pairs unfairness", "all-pairs unfairness",
               "child-pairs partitions", "all-pairs partitions"});
  for (const auto& fn : functions) {
    AuditOptions child_pairs;
    child_pairs.algorithm = "unbalanced";
    child_pairs.evaluator.sibling_comparison = SiblingComparison::kChildPairs;
    AuditOptions all_pairs = child_pairs;
    all_pairs.evaluator.sibling_comparison = SiblingComparison::kAllPairs;
    StatusOr<AuditResult> a = auditor.Audit(*fn, child_pairs);
    StatusOr<AuditResult> b = auditor.Audit(*fn, all_pairs);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "audit failed for %s\n", fn->Name().c_str());
      return 1;
    }
    t.AddRow({fn->Name(), FormatDouble(a->unfairness, 3),
              FormatDouble(b->unfairness, 3),
              std::to_string(a->partitions.size()),
              std::to_string(b->partitions.size())});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Expected: the readings mostly agree on which functions are unfair;\n"
      "all-pairs is more conservative about splitting (sibling-sibling\n"
      "pairs dilute the children's contribution).\n");
  return 0;
}
