// trace_overhead — the tracing subsystem's cost contract, measured.
//
// Replays the Table-2 workload shape (the paper's random functions f1..f5
// over the synthetic worker population) through the auditor three ways:
//
//   baseline:          ExecutionLimits::trace = nullptr — the production
//                      default; every instrumentation site is one
//                      null-pointer check.
//   untraced_attached: a TraceContext constructed with sampled=false is
//                      attached — spans are requested but dropped at the
//                      sampling gate. This is "tracing compiled in,
//                      sampling off", the mode the <= 2% contract covers.
//   traced:            a live TraceContext records every span
//                      (informational; slow-request dumps pay this).
//
// Modes are interleaved within each repetition so clock drift and cache
// warmup hit all three equally. The always-on metrics registry (relaxed
// counter bumps) is active in every mode, exactly as in production.
//
// Prints a table and writes BENCH_trace_overhead.json;
// `overhead_percent` (untraced_attached vs baseline) is the number the
// bench-json-schema lint and CI track against the <= 2% budget.
//
// Override the population size with FAIRRANK_WORKERS=<n> and the
// repetition count with FAIRRANK_REPS=<n>.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace fairrank {
namespace {

using bench::kDataSeed;
using bench::MakeWorkers;
using bench::SizeFromEnv;

/// One full pass of the workload: every paper function audited with the
/// given trace attachment. Returns wall seconds; dies on audit failure
/// (a broken workload must not masquerade as a fast one).
double RunWorkload(const Table& workers,
                   const std::vector<std::unique_ptr<ScoringFunction>>& fns,
                   TraceContext* trace) {
  Stopwatch watch;
  for (const auto& fn : fns) {
    AuditOptions options;
    options.algorithm = "unbalanced";
    options.seed = 2;
    options.limits.trace = trace;
    FairnessAuditor auditor(&workers);
    StatusOr<AuditResult> result = auditor.Audit(*fn, options);
    if (!result.ok()) {
      std::fprintf(stderr, "trace_overhead: audit failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  return watch.ElapsedSeconds();
}

}  // namespace
}  // namespace fairrank

int main() {
  using namespace fairrank;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 7300);
  const size_t reps = SizeFromEnv("FAIRRANK_REPS", 5);
  std::printf("workers=%zu reps=%zu seed=%llu\n", n, reps,
              static_cast<unsigned long long>(kDataSeed));
  Table workers = MakeWorkers(n);
  auto functions = MakePaperRandomFunctions();

  // One untimed warmup pass fills the table's lazy column caches so the
  // first timed mode is not charged for them.
  (void)RunWorkload(workers, functions, nullptr);

  double baseline = 0;
  double untraced_attached = 0;
  double traced = 0;
  uint64_t spans_recorded = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    baseline += RunWorkload(workers, functions, nullptr);
    TraceContext off(/*sampled=*/false);
    untraced_attached += RunWorkload(workers, functions, &off);
    TraceContext on;
    traced += RunWorkload(workers, functions, &on);
    spans_recorded += on.span_count();
  }

  const double overhead =
      baseline > 0 ? (untraced_attached - baseline) / baseline * 100.0 : 0;
  const double enabled_overhead =
      baseline > 0 ? (traced - baseline) / baseline * 100.0 : 0;
  std::printf("baseline           %.4f s\n", baseline);
  std::printf("untraced_attached  %.4f s  (%+.2f%%)\n", untraced_attached,
              overhead);
  std::printf("traced             %.4f s  (%+.2f%%, %llu spans)\n", traced,
              enabled_overhead,
              static_cast<unsigned long long>(spans_recorded));

  std::string json = "{";
  json += "\"bench\":\"trace_overhead\",";
  json += "\"workers\":" + std::to_string(n) + ",";
  json += "\"repetitions\":" + std::to_string(reps) + ",";
  json += "\"baseline_seconds\":" + FormatDouble(baseline, 4) + ",";
  json += "\"untraced_attached_seconds\":" +
          FormatDouble(untraced_attached, 4) + ",";
  json += "\"traced_seconds\":" + FormatDouble(traced, 4) + ",";
  json += "\"overhead_percent\":" + FormatDouble(overhead, 2) + ",";
  json += "\"enabled_overhead_percent\":" + FormatDouble(enabled_overhead, 2) +
          ",";
  json += "\"spans_recorded\":" + std::to_string(spans_recorded);
  json += "}";

  const char* out_path = "BENCH_trace_overhead.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "trace_overhead: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "%s\n", json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
