// server_load — load generator for fairauditd and the first checked-in
// serving-layer baselines.
//
// Replays a fixed mixed trace (/audit + /suite + /stats, 10-request cycle)
// from N concurrent client threads, in two equal-duration phases:
//
//   phase "close":      one fresh connection per request (HttpFetch),
//                       i.e. the pre-keep-alive cost model;
//   phase "keep_alive": one persistent connection per client (HttpClient),
//                       reconnecting only when the server closes.
//
// Both phases run against the same warm server (every trace target is
// fetched once up front), so the delta between them isolates connection
// setup/teardown cost rather than cache warmup. Per endpoint and phase the
// harness reports p50/p99/max latency, throughput, and shed rate (429/503),
// prints a human-readable table, and writes machine-readable
// BENCH_server_load.json for the perf trajectory.
//
// Before the daemon drains, the harness scrapes GET /metrics once and
// reports the *server-side* p50/p99 per endpoint (the daemon's own
// GK-sketch quantiles, cumulative over warmup + both phases) next to the
// client-side numbers — the gap between the two is queueing plus the
// network/loopback round trip, client-observable but invisible to the
// server's own histogram.
//
// Self-contained by default: boots an in-process FairAuditServer on an
// ephemeral port over a synthetic dataset (--workers). Point it at an
// external daemon with --host/--port (the CI smoke job does).
//
//   server_load [--clients 4] [--duration-ms 2000] [--workers 150]
//               [--host 127.0.0.1] [--port 0] [--timeout-ms 10000]
//               [--response-cache-mb 8] [--out BENCH_server_load.json]
//
// Exit status is non-zero when the run produced no successful requests —
// the smoke job's signal that the daemon was unreachable.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "marketplace/generator.h"
#include "server/client.h"
#include "server/server.h"

namespace fairrank {
namespace {

/// One request of the trace cycle: reporting endpoint + concrete target.
struct TraceItem {
  const char* endpoint;
  const char* target;
};

/// The 10-request cycle every client replays: 60% audits over three
/// distinct parameterizations (so the response cache sees both hits and
/// misses), one suite, three stats probes. Deliberately small audits — the
/// harness measures the serving layer, not the search.
constexpr TraceItem kTrace[] = {
    {"/audit", "/audit?function=alpha:0.5&algorithm=unbalanced&seed=3"},
    {"/audit", "/audit?function=f6&algorithm=unbalanced&seed=3"},
    {"/stats", "/stats"},
    {"/audit", "/audit?function=alpha:0.5&algorithm=unbalanced&seed=3"},
    {"/audit", "/audit?function=alpha:0.25&algorithm=unbalanced&seed=3"},
    {"/stats", "/stats"},
    {"/suite", "/suite?functions=alpha:0.5&algorithms=unbalanced&seed=3"},
    {"/audit", "/audit?function=f6&algorithm=unbalanced&seed=3"},
    {"/audit", "/audit?function=alpha:0.5&algorithm=unbalanced&seed=3"},
    {"/stats", "/stats"},
};
constexpr size_t kTraceLen = sizeof(kTrace) / sizeof(kTrace[0]);

/// One client's raw measurements for one phase.
struct ClientLog {
  /// Parallel arrays: trace index, latency, HTTP status (0 = transport
  /// error) per request fired.
  std::vector<size_t> trace_index;
  std::vector<int64_t> micros;
  std::vector<int> status;
  uint64_t connects = 0;  ///< keep_alive phase: TCP connects this client.
};

/// Aggregated per-endpoint numbers after merging all clients.
struct EndpointReport {
  uint64_t requests = 0;
  uint64_t shed = 0;    ///< 429/503 — load-shedding responses.
  uint64_t errors = 0;  ///< Other >= 400s and transport failures.
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double throughput_rps = 0;
};

struct PhaseReport {
  std::map<std::string, EndpointReport> endpoints;
  uint64_t requests = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t connects = 0;
  double seconds = 0;
  double throughput_rps = 0;
};

double PercentileMs(std::vector<int64_t>& sorted_micros, double q) {
  if (sorted_micros.empty()) return 0;
  size_t index = static_cast<size_t>(q * (sorted_micros.size() - 1));
  return sorted_micros[index] / 1000.0;
}

PhaseReport Aggregate(const std::vector<ClientLog>& logs, double seconds) {
  PhaseReport report;
  report.seconds = seconds;
  std::map<std::string, std::vector<int64_t>> latencies;
  for (const ClientLog& log : logs) {
    report.connects += log.connects;
    for (size_t i = 0; i < log.micros.size(); ++i) {
      const char* endpoint = kTrace[log.trace_index[i]].endpoint;
      EndpointReport& ep = report.endpoints[endpoint];
      ++ep.requests;
      ++report.requests;
      int status = log.status[i];
      if (status == 429 || status == 503) {
        ++ep.shed;
        ++report.shed;
      } else if (status == 0 || status >= 400) {
        ++ep.errors;
        ++report.errors;
      }
      latencies[endpoint].push_back(log.micros[i]);
    }
  }
  for (auto& [endpoint, micros] : latencies) {
    std::sort(micros.begin(), micros.end());
    EndpointReport& ep = report.endpoints[endpoint];
    ep.p50_ms = PercentileMs(micros, 0.5);
    ep.p99_ms = PercentileMs(micros, 0.99);
    ep.max_ms = micros.back() / 1000.0;
    if (seconds > 0) ep.throughput_rps = ep.requests / seconds;
  }
  if (seconds > 0) report.throughput_rps = report.requests / seconds;
  return report;
}

void PrintPhase(const char* name, const PhaseReport& report) {
  std::printf("phase %-10s  %.2fs  %llu requests  %.0f req/s  shed %llu  "
              "errors %llu",
              name, report.seconds,
              static_cast<unsigned long long>(report.requests),
              report.throughput_rps,
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(report.errors));
  if (report.connects > 0) {
    std::printf("  connects %llu",
                static_cast<unsigned long long>(report.connects));
  }
  std::printf("\n");
  for (const auto& [endpoint, ep] : report.endpoints) {
    double shed_rate = ep.requests > 0
                           ? static_cast<double>(ep.shed) / ep.requests
                           : 0;
    std::printf("  %-8s  n=%-6llu  p50 %8.3f ms  p99 %8.3f ms  "
                "max %8.3f ms  %7.0f req/s  shed %.3f\n",
                endpoint.c_str(),
                static_cast<unsigned long long>(ep.requests), ep.p50_ms,
                ep.p99_ms, ep.max_ms, ep.throughput_rps, shed_rate);
  }
}

std::string JsonPhase(const PhaseReport& report) {
  std::string out = "{";
  out += "\"seconds\":" + FormatDouble(report.seconds, 3) + ",";
  out += "\"requests\":" + std::to_string(report.requests) + ",";
  out += "\"throughput_rps\":" + FormatDouble(report.throughput_rps, 1) + ",";
  out += "\"shed\":" + std::to_string(report.shed) + ",";
  out += "\"errors\":" + std::to_string(report.errors) + ",";
  out += "\"connects\":" + std::to_string(report.connects) + ",";
  out += "\"endpoints\":{";
  bool first = true;
  for (const auto& [endpoint, ep] : report.endpoints) {
    if (!first) out += ",";
    first = false;
    double shed_rate =
        ep.requests > 0 ? static_cast<double>(ep.shed) / ep.requests : 0;
    out += "\"" + endpoint + "\":{";
    out += "\"requests\":" + std::to_string(ep.requests) + ",";
    out += "\"p50_ms\":" + FormatDouble(ep.p50_ms, 3) + ",";
    out += "\"p99_ms\":" + FormatDouble(ep.p99_ms, 3) + ",";
    out += "\"max_ms\":" + FormatDouble(ep.max_ms, 3) + ",";
    out += "\"throughput_rps\":" + FormatDouble(ep.throughput_rps, 1) + ",";
    out += "\"shed_rate\":" + FormatDouble(shed_rate, 4) + ",";
    out += "\"errors\":" + std::to_string(ep.errors);
    out += "}";
  }
  out += "}}";
  return out;
}

/// Replays the trace until `deadline` on either a persistent HttpClient
/// (keep_alive true) or one fresh connection per request.
ClientLog RunClient(const std::string& host, int port, bool keep_alive,
                    const Deadline& deadline, int64_t timeout_ms,
                    size_t start_offset) {
  ClientLog log;
  HttpClient client(host, port);
  size_t cursor = start_offset;  // Staggered so clients don't march in step.
  while (deadline.RemainingSeconds() > 0) {
    size_t index = cursor % kTraceLen;
    ++cursor;
    Stopwatch watch;
    int status = 0;
    if (keep_alive) {
      StatusOr<HttpFetchResult> r =
          client.Fetch("GET", kTrace[index].target, "", timeout_ms);
      if (r.ok()) status = r->status_code;
    } else {
      StatusOr<HttpFetchResult> r = HttpFetch(
          host, port, "GET", kTrace[index].target, "", timeout_ms);
      if (r.ok()) status = r->status_code;
    }
    log.trace_index.push_back(index);
    log.micros.push_back(watch.ElapsedMicros());
    log.status.push_back(status);
  }
  log.connects = keep_alive ? client.connects() : 0;
  return log;
}

/// Server-side latency quantiles parsed out of a /metrics scrape.
struct ServerSideLatency {
  double p50_ms = 0;
  double p99_ms = 0;
};

/// Pulls fairrank_http_request_duration_seconds{endpoint=...,quantile=...}
/// samples out of Prometheus exposition text. Tolerant of families the
/// scrape also carries; unknown lines are skipped.
std::map<std::string, ServerSideLatency> ParseServerQuantiles(
    const std::string& metrics) {
  std::map<std::string, ServerSideLatency> out;
  const std::string family = "fairrank_http_request_duration_seconds{";
  for (const std::string& line : Split(metrics, '\n')) {
    if (line.rfind(family, 0) != 0) continue;
    size_t close = line.find('}');
    size_t space = line.find(' ', close);
    if (close == std::string::npos || space == std::string::npos) continue;
    std::string labels = line.substr(family.size(), close - family.size());
    double value = 0;
    if (!ParseDouble(Trim(line.substr(space + 1)), &value)) continue;
    auto label_value = [&labels](const std::string& name) -> std::string {
      std::string needle = name + "=\"";
      size_t start = labels.find(needle);
      if (start == std::string::npos) return "";
      start += needle.size();
      size_t end = labels.find('"', start);
      return end == std::string::npos ? "" : labels.substr(start, end - start);
    };
    std::string endpoint = label_value("endpoint");
    std::string quantile = label_value("quantile");
    if (endpoint.empty()) continue;
    if (quantile == "0.5") {
      out[endpoint].p50_ms = value * 1000.0;
    } else if (quantile == "0.99") {
      out[endpoint].p99_ms = value * 1000.0;
    }
  }
  return out;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "server_load: %s\n", status.ToString().c_str());
  return 1;
}

int Main(int argc, char** argv) {
  StatusOr<FlagParser> flags = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags.ok()) return Fail(flags.status());
  Status known = ValidateKnownFlags(
      *flags, {"clients", "duration-ms", "workers", "host", "port",
               "timeout-ms", "response-cache-mb", "out"});
  if (!known.ok()) return Fail(known);

  StatusOr<int64_t> clients = flags->GetInt("clients", 4);
  StatusOr<int64_t> duration_ms = flags->GetInt("duration-ms", 2000);
  StatusOr<int64_t> workers = flags->GetInt("workers", 150);
  StatusOr<int64_t> port_flag = flags->GetInt("port", 0);
  StatusOr<int64_t> timeout_ms = flags->GetInt("timeout-ms", 10000);
  StatusOr<int64_t> cache_mb = flags->GetInt("response-cache-mb", 8);
  for (const auto* value :
       {&clients, &duration_ms, &workers, &port_flag, &timeout_ms,
        &cache_mb}) {
    if (!value->ok()) return Fail(value->status());
  }
  if (*clients < 1 || *duration_ms < 1) {
    return Fail(Status::InvalidArgument(
        "--clients and --duration-ms must be >= 1"));
  }
  std::string host = flags->GetString("host", "127.0.0.1");
  std::string out_path = flags->GetString("out", "BENCH_server_load.json");

  // --port 0 (the default): boot an in-process daemon on an ephemeral port.
  std::unique_ptr<FairAuditServer> server;
  int port = static_cast<int>(*port_flag);
  const bool in_process = port == 0;
  if (in_process) {
    GeneratorOptions gen;
    gen.num_workers = static_cast<size_t>(*workers);
    gen.seed = 7;
    StatusOr<Table> table = GenerateWorkers(gen);
    if (!table.ok()) return Fail(table.status());
    std::map<std::string, std::unique_ptr<Table>> tables;
    tables["synthetic"] = std::make_unique<Table>(std::move(table).value());
    ServerOptions options;
    options.port = 0;
    options.num_workers = static_cast<int>(*clients) + 2;
    options.queue_capacity = static_cast<size_t>(*clients) * 4;
    options.response_cache_mb = static_cast<uint64_t>(*cache_mb);
    server = std::make_unique<FairAuditServer>(std::move(tables), "synthetic",
                                               std::move(options));
    Status started = server->Start();
    if (!started.ok()) return Fail(started);
    port = server->port();
    std::printf("in-process daemon on %s:%d (%lld synthetic workers)\n",
                host.c_str(), port, static_cast<long long>(*workers));
  } else {
    std::printf("external daemon at %s:%d\n", host.c_str(), port);
  }

  const size_t n_clients = static_cast<size_t>(*clients);
  std::vector<ClientLog> close_logs(n_clients);
  std::vector<ClientLog> keep_logs(n_clients);
  double close_seconds = 0;
  double keep_seconds = 0;
  std::string metrics_text;  // Written once, by the last client to finish.
  std::atomic<size_t> clients_done{0};

  // One pool hosts everything: with an in-process daemon, task 0 runs
  // Serve() and the last client to finish triggers the drain that lets it
  // return. External mode runs clients only.
  const size_t base = in_process ? 1 : 0;
  Status serve_status = Status::OK();
  ParallelForEach(
      n_clients + base, static_cast<int>(n_clients + base),
      [&](size_t task) {
        if (in_process && task == 0) {
          serve_status = server->Serve();
          return;
        }
        const size_t c = task - base;
        const size_t offset = c * 3;  // Staggered trace starts.
        // Warm every trace target once (per client, so no cross-client
        // coordination): neither phase pays first-touch cost (lazy table
        // columns, response cache fill) and the phase delta isolates
        // connection handling. Runs here — not before the pool — because
        // the in-process daemon's listener only runs once task 0 is up.
        {
          HttpClient warm(host, port);
          for (const TraceItem& item : kTrace) {
            StatusOr<HttpFetchResult> r =
                warm.Fetch("GET", item.target, "", *timeout_ms);
            if (!r.ok()) {
              std::fprintf(stderr, "server_load: warmup %s: %s\n",
                           item.target, r.status().ToString().c_str());
              break;
            }
          }
        }
        Stopwatch phase_watch;
        Deadline close_deadline = Deadline::AfterMillis(*duration_ms);
        close_logs[c] = RunClient(host, port, /*keep_alive=*/false,
                                  close_deadline, *timeout_ms, offset);
        if (c == 0) close_seconds = phase_watch.ElapsedSeconds();
        phase_watch.Restart();
        Deadline keep_deadline = Deadline::AfterMillis(*duration_ms);
        keep_logs[c] = RunClient(host, port, /*keep_alive=*/true,
                                 keep_deadline, *timeout_ms, offset);
        if (c == 0) keep_seconds = phase_watch.ElapsedSeconds();
        if (clients_done.fetch_add(1) + 1 == n_clients) {
          // Last client out scrapes the server's own latency histograms —
          // before the in-process drain tears the listener down.
          StatusOr<HttpFetchResult> scrape =
              HttpFetch(host, port, "GET", "/metrics", "", *timeout_ms);
          if (scrape.ok() && scrape->status_code == 200) {
            metrics_text = std::move(scrape->body);
          }
          if (in_process) server->RequestShutdown();
        }
      });
  if (in_process && !serve_status.ok()) return Fail(serve_status);

  PhaseReport close_report = Aggregate(close_logs, close_seconds);
  PhaseReport keep_report = Aggregate(keep_logs, keep_seconds);
  PrintPhase("close", close_report);
  PrintPhase("keep_alive", keep_report);
  double speedup = close_report.throughput_rps > 0
                       ? keep_report.throughput_rps /
                             close_report.throughput_rps
                       : 0;
  std::printf("keep-alive throughput speedup: %.2fx\n", speedup);

  std::map<std::string, ServerSideLatency> server_side =
      ParseServerQuantiles(metrics_text);
  if (!server_side.empty()) {
    std::printf("server-side (from /metrics, cumulative):\n");
    for (const auto& [endpoint, lat] : server_side) {
      std::printf("  %-8s  p50 %8.3f ms  p99 %8.3f ms\n", endpoint.c_str(),
                  lat.p50_ms, lat.p99_ms);
    }
  } else {
    std::printf("server-side: /metrics scrape unavailable\n");
  }

  std::string json = "{";
  json += "\"bench\":\"server_load\",";
  json += "\"clients\":" + std::to_string(n_clients) + ",";
  json += "\"duration_ms\":" + std::to_string(*duration_ms) + ",";
  json += "\"workers\":" + std::to_string(*workers) + ",";
  json += "\"in_process\":" + std::string(in_process ? "true" : "false") +
          ",";
  json += "\"trace_len\":" + std::to_string(kTraceLen) + ",";
  json += "\"phases\":{";
  json += "\"close\":" + JsonPhase(close_report) + ",";
  json += "\"keep_alive\":" + JsonPhase(keep_report);
  json += "},";
  json += "\"server_side\":{";
  bool first_ep = true;
  for (const auto& [endpoint, lat] : server_side) {
    if (!first_ep) json += ",";
    first_ep = false;
    json += "\"" + endpoint + "\":{";
    json += "\"p50_ms\":" + FormatDouble(lat.p50_ms, 3) + ",";
    json += "\"p99_ms\":" + FormatDouble(lat.p99_ms, 3);
    json += "}";
  }
  json += "},";
  json += "\"keep_alive_speedup\":" + FormatDouble(speedup, 2);
  json += "}";

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    return Fail(Status::IOError("cannot write " + out_path));
  }
  std::fprintf(out, "%s\n", json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  uint64_t successes = (close_report.requests - close_report.errors) +
                       (keep_report.requests - keep_report.errors);
  return successes > 0 ? 0 : 1;
}

}  // namespace
}  // namespace fairrank

int main(int argc, char** argv) { return fairrank::Main(argc, argv); }
