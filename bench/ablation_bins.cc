// Ablation (ours): sensitivity of the unfairness measure to the histogram
// bin count. The paper fixes "equal bins over the range of f" without
// reporting the count; this sweep shows how the audited unfairness of a
// random function (f1) and a biased one (f6) move as bins vary.

#include <cstdio>

#include "bench_common.h"
#include "marketplace/biased_scoring.h"

int main() {
  using namespace fairrank;
  using namespace fairrank::bench;

  const size_t n = SizeFromEnv("FAIRRANK_WORKERS", 2000);
  Table workers = MakeWorkers(n);
  FairnessAuditor auditor(&workers);
  auto f1 = MakeAlphaFunction("f1 (alpha=0.5)", 0.5);
  auto f6 = MakeF6(7);

  std::printf("=== Ablation: histogram bin count (workers=%zu) ===\n\n", n);
  TextTable t;
  t.SetHeader({"bins", "f1 unfairness (balanced)", "f6 unfairness (balanced)",
               "f6 partitions"});
  for (int bins : {5, 10, 20, 50, 100}) {
    AuditOptions options;
    options.algorithm = "balanced";
    options.evaluator.num_bins = bins;
    StatusOr<AuditResult> r1 = auditor.Audit(*f1, options);
    StatusOr<AuditResult> r6 = auditor.Audit(*f6, options);
    if (!r1.ok() || !r6.ok()) {
      std::fprintf(stderr, "audit failed\n");
      return 1;
    }
    t.AddRow({std::to_string(bins), FormatDouble(r1->unfairness, 3),
              FormatDouble(r6->unfairness, 3),
              std::to_string(r6->partitions.size())});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Expected: f6 converges to the true Wasserstein distance 0.8 as bins\n"
      "grow; f1 stays low at every resolution; the gap is robust to the\n"
      "bin-count choice.\n");
  return 0;
}
