// Figure 1: the toy example — 10 workers, protected attributes Gender and
// Language, and the optimum partitioning {Male-English, Male-Indian,
// Male-Other, Female}. Prints the toy table, each partition's histogram,
// and the partitionings found by exhaustive search and both heuristics.

#include <cstdio>

#include "bench_common.h"
#include "marketplace/worker.h"

int main() {
  using namespace fairrank;

  StatusOr<Table> table_or = MakeToyTable();
  if (!table_or.ok()) {
    std::fprintf(stderr, "%s\n", table_or.status().ToString().c_str());
    return 1;
  }
  const Table& table = *table_or;

  std::printf("=== Figure 1: toy example (10 workers) ===\n\n");
  {
    TextTable t;
    t.SetHeader({"worker", "Gender", "Language", "f(w)"});
    for (size_t row = 0; row < table.num_rows(); ++row) {
      // Built stepwise: "w" + to_string trips GCC 12's -Wrestrict false
      // positive (PR105651) under -Werror.
      std::string worker = "w";
      worker += std::to_string(row + 1);
      t.AddRow({std::move(worker), table.CellToString(row, 0),
                table.CellToString(row, 1), table.CellToString(row, 2)});
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  LinearScoringFunction score("toy score", {{"Score", 1.0}});
  FairnessAuditor auditor(&table);
  for (const char* algorithm :
       {"exhaustive", "balanced", "unbalanced", "all-attributes"}) {
    AuditOptions options;
    options.algorithm = algorithm;
    StatusOr<AuditResult> result = auditor.Audit(score, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    ReportOptions report;
    report.include_histograms = true;
    std::printf("%s\n", FormatAuditReport(*result, report).c_str());
  }

  std::printf(
      "Expected (paper): optimum splits on Gender, then Male on Language ->\n"
      "{Male-English, Male-Indian, Male-Other, Female}.\n");
  return 0;
}
