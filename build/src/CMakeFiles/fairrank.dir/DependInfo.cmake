
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/fairrank.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/common/flags.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/fairrank.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/fairrank.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/fairrank.dir/common/status.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/fairrank.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/fairrank.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/common/str_util.cc.o.d"
  "/root/repo/src/data/attribute.cc" "src/CMakeFiles/fairrank.dir/data/attribute.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/data/attribute.cc.o.d"
  "/root/repo/src/data/column.cc" "src/CMakeFiles/fairrank.dir/data/column.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/data/column.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/fairrank.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/data/csv.cc.o.d"
  "/root/repo/src/data/profile.cc" "src/CMakeFiles/fairrank.dir/data/profile.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/data/profile.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/fairrank.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/data/schema.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/fairrank.dir/data/table.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/data/table.cc.o.d"
  "/root/repo/src/fairness/agglomerative.cc" "src/CMakeFiles/fairrank.dir/fairness/agglomerative.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/agglomerative.cc.o.d"
  "/root/repo/src/fairness/aggregate.cc" "src/CMakeFiles/fairrank.dir/fairness/aggregate.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/aggregate.cc.o.d"
  "/root/repo/src/fairness/auditor.cc" "src/CMakeFiles/fairrank.dir/fairness/auditor.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/auditor.cc.o.d"
  "/root/repo/src/fairness/balanced.cc" "src/CMakeFiles/fairrank.dir/fairness/balanced.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/balanced.cc.o.d"
  "/root/repo/src/fairness/baselines.cc" "src/CMakeFiles/fairrank.dir/fairness/baselines.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/baselines.cc.o.d"
  "/root/repo/src/fairness/beam.cc" "src/CMakeFiles/fairrank.dir/fairness/beam.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/beam.cc.o.d"
  "/root/repo/src/fairness/evaluator.cc" "src/CMakeFiles/fairrank.dir/fairness/evaluator.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/evaluator.cc.o.d"
  "/root/repo/src/fairness/exhaustive.cc" "src/CMakeFiles/fairrank.dir/fairness/exhaustive.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/exhaustive.cc.o.d"
  "/root/repo/src/fairness/exposure.cc" "src/CMakeFiles/fairrank.dir/fairness/exposure.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/exposure.cc.o.d"
  "/root/repo/src/fairness/partition.cc" "src/CMakeFiles/fairrank.dir/fairness/partition.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/partition.cc.o.d"
  "/root/repo/src/fairness/registry.cc" "src/CMakeFiles/fairrank.dir/fairness/registry.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/registry.cc.o.d"
  "/root/repo/src/fairness/report.cc" "src/CMakeFiles/fairrank.dir/fairness/report.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/report.cc.o.d"
  "/root/repo/src/fairness/selector.cc" "src/CMakeFiles/fairrank.dir/fairness/selector.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/selector.cc.o.d"
  "/root/repo/src/fairness/serialize.cc" "src/CMakeFiles/fairrank.dir/fairness/serialize.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/serialize.cc.o.d"
  "/root/repo/src/fairness/significance.cc" "src/CMakeFiles/fairrank.dir/fairness/significance.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/significance.cc.o.d"
  "/root/repo/src/fairness/splitter.cc" "src/CMakeFiles/fairrank.dir/fairness/splitter.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/splitter.cc.o.d"
  "/root/repo/src/fairness/suite.cc" "src/CMakeFiles/fairrank.dir/fairness/suite.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/suite.cc.o.d"
  "/root/repo/src/fairness/unbalanced.cc" "src/CMakeFiles/fairrank.dir/fairness/unbalanced.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/fairness/unbalanced.cc.o.d"
  "/root/repo/src/marketplace/biased_scoring.cc" "src/CMakeFiles/fairrank.dir/marketplace/biased_scoring.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/marketplace/biased_scoring.cc.o.d"
  "/root/repo/src/marketplace/generator.cc" "src/CMakeFiles/fairrank.dir/marketplace/generator.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/marketplace/generator.cc.o.d"
  "/root/repo/src/marketplace/ranking.cc" "src/CMakeFiles/fairrank.dir/marketplace/ranking.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/marketplace/ranking.cc.o.d"
  "/root/repo/src/marketplace/realistic.cc" "src/CMakeFiles/fairrank.dir/marketplace/realistic.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/marketplace/realistic.cc.o.d"
  "/root/repo/src/marketplace/scoring.cc" "src/CMakeFiles/fairrank.dir/marketplace/scoring.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/marketplace/scoring.cc.o.d"
  "/root/repo/src/marketplace/tasks.cc" "src/CMakeFiles/fairrank.dir/marketplace/tasks.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/marketplace/tasks.cc.o.d"
  "/root/repo/src/marketplace/worker.cc" "src/CMakeFiles/fairrank.dir/marketplace/worker.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/marketplace/worker.cc.o.d"
  "/root/repo/src/repair/repair.cc" "src/CMakeFiles/fairrank.dir/repair/repair.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/repair/repair.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/fairrank.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/divergence.cc" "src/CMakeFiles/fairrank.dir/stats/divergence.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/stats/divergence.cc.o.d"
  "/root/repo/src/stats/emd.cc" "src/CMakeFiles/fairrank.dir/stats/emd.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/stats/emd.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/fairrank.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/quantile_sketch.cc" "src/CMakeFiles/fairrank.dir/stats/quantile_sketch.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/stats/quantile_sketch.cc.o.d"
  "/root/repo/src/stats/transportation.cc" "src/CMakeFiles/fairrank.dir/stats/transportation.cc.o" "gcc" "src/CMakeFiles/fairrank.dir/stats/transportation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
