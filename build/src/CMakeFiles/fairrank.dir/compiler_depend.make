# Empty compiler generated dependencies file for fairrank.
# This may be replaced when dependencies are built.
