file(REMOVE_RECURSE
  "libfairrank.a"
)
