file(REMOVE_RECURSE
  "CMakeFiles/repair_sweep.dir/repair_sweep.cc.o"
  "CMakeFiles/repair_sweep.dir/repair_sweep.cc.o.d"
  "repair_sweep"
  "repair_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
