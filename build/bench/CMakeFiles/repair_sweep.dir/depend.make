# Empty dependencies file for repair_sweep.
# This may be replaced when dependencies are built.
