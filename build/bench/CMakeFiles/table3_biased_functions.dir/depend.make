# Empty dependencies file for table3_biased_functions.
# This may be replaced when dependencies are built.
