file(REMOVE_RECURSE
  "CMakeFiles/table3_biased_functions.dir/table3_biased_functions.cc.o"
  "CMakeFiles/table3_biased_functions.dir/table3_biased_functions.cc.o.d"
  "table3_biased_functions"
  "table3_biased_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_biased_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
