file(REMOVE_RECURSE
  "CMakeFiles/ablation_bins.dir/ablation_bins.cc.o"
  "CMakeFiles/ablation_bins.dir/ablation_bins.cc.o.d"
  "ablation_bins"
  "ablation_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
