# Empty compiler generated dependencies file for extensions_compare.
# This may be replaced when dependencies are built.
