file(REMOVE_RECURSE
  "CMakeFiles/extensions_compare.dir/extensions_compare.cc.o"
  "CMakeFiles/extensions_compare.dir/extensions_compare.cc.o.d"
  "extensions_compare"
  "extensions_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
