# Empty dependencies file for realistic_bias_sweep.
# This may be replaced when dependencies are built.
