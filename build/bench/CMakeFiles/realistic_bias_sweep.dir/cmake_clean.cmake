file(REMOVE_RECURSE
  "CMakeFiles/realistic_bias_sweep.dir/realistic_bias_sweep.cc.o"
  "CMakeFiles/realistic_bias_sweep.dir/realistic_bias_sweep.cc.o.d"
  "realistic_bias_sweep"
  "realistic_bias_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realistic_bias_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
