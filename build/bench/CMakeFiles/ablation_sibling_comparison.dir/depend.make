# Empty dependencies file for ablation_sibling_comparison.
# This may be replaced when dependencies are built.
