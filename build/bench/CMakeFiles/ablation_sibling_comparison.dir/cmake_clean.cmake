file(REMOVE_RECURSE
  "CMakeFiles/ablation_sibling_comparison.dir/ablation_sibling_comparison.cc.o"
  "CMakeFiles/ablation_sibling_comparison.dir/ablation_sibling_comparison.cc.o.d"
  "ablation_sibling_comparison"
  "ablation_sibling_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sibling_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
