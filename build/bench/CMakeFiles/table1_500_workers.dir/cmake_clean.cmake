file(REMOVE_RECURSE
  "CMakeFiles/table1_500_workers.dir/table1_500_workers.cc.o"
  "CMakeFiles/table1_500_workers.dir/table1_500_workers.cc.o.d"
  "table1_500_workers"
  "table1_500_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_500_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
