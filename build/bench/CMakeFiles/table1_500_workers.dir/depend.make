# Empty dependencies file for table1_500_workers.
# This may be replaced when dependencies are built.
