file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_blowup.dir/exhaustive_blowup.cc.o"
  "CMakeFiles/exhaustive_blowup.dir/exhaustive_blowup.cc.o.d"
  "exhaustive_blowup"
  "exhaustive_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
