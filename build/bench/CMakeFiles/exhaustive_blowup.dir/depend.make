# Empty dependencies file for exhaustive_blowup.
# This may be replaced when dependencies are built.
