file(REMOVE_RECURSE
  "CMakeFiles/micro_emd.dir/micro_emd.cc.o"
  "CMakeFiles/micro_emd.dir/micro_emd.cc.o.d"
  "micro_emd"
  "micro_emd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_emd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
