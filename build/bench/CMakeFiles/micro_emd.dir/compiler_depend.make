# Empty compiler generated dependencies file for micro_emd.
# This may be replaced when dependencies are built.
