# Empty compiler generated dependencies file for table2_7300_workers.
# This may be replaced when dependencies are built.
