file(REMOVE_RECURSE
  "CMakeFiles/table2_7300_workers.dir/table2_7300_workers.cc.o"
  "CMakeFiles/table2_7300_workers.dir/table2_7300_workers.cc.o.d"
  "table2_7300_workers"
  "table2_7300_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_7300_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
