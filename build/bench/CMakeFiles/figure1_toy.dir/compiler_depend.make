# Empty compiler generated dependencies file for figure1_toy.
# This may be replaced when dependencies are built.
