file(REMOVE_RECURSE
  "CMakeFiles/figure1_toy.dir/figure1_toy.cc.o"
  "CMakeFiles/figure1_toy.dir/figure1_toy.cc.o.d"
  "figure1_toy"
  "figure1_toy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
