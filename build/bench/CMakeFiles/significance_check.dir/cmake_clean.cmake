file(REMOVE_RECURSE
  "CMakeFiles/significance_check.dir/significance_check.cc.o"
  "CMakeFiles/significance_check.dir/significance_check.cc.o.d"
  "significance_check"
  "significance_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/significance_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
