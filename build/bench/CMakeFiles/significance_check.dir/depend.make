# Empty dependencies file for significance_check.
# This may be replaced when dependencies are built.
