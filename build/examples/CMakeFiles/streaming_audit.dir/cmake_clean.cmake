file(REMOVE_RECURSE
  "CMakeFiles/streaming_audit.dir/streaming_audit.cpp.o"
  "CMakeFiles/streaming_audit.dir/streaming_audit.cpp.o.d"
  "streaming_audit"
  "streaming_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
