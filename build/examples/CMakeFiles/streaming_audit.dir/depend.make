# Empty dependencies file for streaming_audit.
# This may be replaced when dependencies are built.
