file(REMOVE_RECURSE
  "CMakeFiles/repair_demo.dir/repair_demo.cpp.o"
  "CMakeFiles/repair_demo.dir/repair_demo.cpp.o.d"
  "repair_demo"
  "repair_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
