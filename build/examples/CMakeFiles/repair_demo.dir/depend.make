# Empty dependencies file for repair_demo.
# This may be replaced when dependencies are built.
