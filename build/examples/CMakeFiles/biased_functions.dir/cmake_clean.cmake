file(REMOVE_RECURSE
  "CMakeFiles/biased_functions.dir/biased_functions.cpp.o"
  "CMakeFiles/biased_functions.dir/biased_functions.cpp.o.d"
  "biased_functions"
  "biased_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
