# Empty compiler generated dependencies file for biased_functions.
# This may be replaced when dependencies are built.
