file(REMOVE_RECURSE
  "CMakeFiles/beam_test.dir/beam_test.cc.o"
  "CMakeFiles/beam_test.dir/beam_test.cc.o.d"
  "beam_test"
  "beam_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
