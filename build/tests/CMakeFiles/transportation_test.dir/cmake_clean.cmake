file(REMOVE_RECURSE
  "CMakeFiles/transportation_test.dir/transportation_test.cc.o"
  "CMakeFiles/transportation_test.dir/transportation_test.cc.o.d"
  "transportation_test"
  "transportation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transportation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
