# Empty dependencies file for transportation_test.
# This may be replaced when dependencies are built.
