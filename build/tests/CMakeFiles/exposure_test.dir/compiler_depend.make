# Empty compiler generated dependencies file for exposure_test.
# This may be replaced when dependencies are built.
