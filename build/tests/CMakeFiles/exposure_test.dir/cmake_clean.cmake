file(REMOVE_RECURSE
  "CMakeFiles/exposure_test.dir/exposure_test.cc.o"
  "CMakeFiles/exposure_test.dir/exposure_test.cc.o.d"
  "exposure_test"
  "exposure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exposure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
