file(REMOVE_RECURSE
  "CMakeFiles/realistic_test.dir/realistic_test.cc.o"
  "CMakeFiles/realistic_test.dir/realistic_test.cc.o.d"
  "realistic_test"
  "realistic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realistic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
