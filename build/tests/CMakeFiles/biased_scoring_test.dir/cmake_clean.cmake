file(REMOVE_RECURSE
  "CMakeFiles/biased_scoring_test.dir/biased_scoring_test.cc.o"
  "CMakeFiles/biased_scoring_test.dir/biased_scoring_test.cc.o.d"
  "biased_scoring_test"
  "biased_scoring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_scoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
