# Empty dependencies file for biased_scoring_test.
# This may be replaced when dependencies are built.
