# Empty dependencies file for emd_test.
# This may be replaced when dependencies are built.
