file(REMOVE_RECURSE
  "CMakeFiles/quantile_sketch_test.dir/quantile_sketch_test.cc.o"
  "CMakeFiles/quantile_sketch_test.dir/quantile_sketch_test.cc.o.d"
  "quantile_sketch_test"
  "quantile_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantile_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
