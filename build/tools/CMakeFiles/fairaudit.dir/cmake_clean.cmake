file(REMOVE_RECURSE
  "CMakeFiles/fairaudit.dir/fairaudit.cc.o"
  "CMakeFiles/fairaudit.dir/fairaudit.cc.o.d"
  "fairaudit"
  "fairaudit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairaudit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
