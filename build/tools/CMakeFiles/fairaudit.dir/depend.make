# Empty dependencies file for fairaudit.
# This may be replaced when dependencies are built.
