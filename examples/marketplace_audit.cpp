// Marketplace audit: the paper's motivating scenario end-to-end. A
// requester posts a task, the platform ranks a simulated worker population
// with the query-induced scoring function, and the platform operator audits
// that function for the most unfair demographic partitioning with every
// algorithm of the paper.

#include <cstdio>

#include "fairness/auditor.h"
#include "fairness/exposure.h"
#include "fairness/report.h"
#include "marketplace/generator.h"
#include "marketplace/ranking.h"
#include "marketplace/worker.h"

namespace {

int Fail(const fairrank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace fairrank;

  // 1. Simulate the platform's active worker pool.
  GeneratorOptions gen;
  gen.num_workers = 2000;
  gen.seed = 7;
  StatusOr<Table> workers = GenerateWorkers(gen);
  if (!workers.ok()) return Fail(workers.status());
  std::printf("Simulated %zu active workers.\n\n", workers->num_rows());

  // 2. A requester posts a task; the query weights induce the scoring
  //    function ("help with HTML, JavaScript, CSS, and JQuery" cares mostly
  //    about the language test).
  TaskQuery query;
  query.description = "help with HTML, JavaScript, CSS, and JQuery";
  query.weights = {{worker_attrs::kLanguageTest, 0.7},
                   {worker_attrs::kApprovalRate, 0.3}};
  RankingEngine engine(&workers.value());
  StatusOr<std::vector<RankedWorker>> top = engine.Rank(query);
  if (!top.ok()) return Fail(top.status());
  std::printf("Top 5 candidates for \"%s\":\n", query.description.c_str());
  for (size_t i = 0; i < 5 && i < top->size(); ++i) {
    const RankedWorker& r = (*top)[i];
    std::printf("  #%zu  worker %zu  score %.3f  (%s, %s)\n", i + 1, r.row,
                r.score, workers->CellToString(r.row, 0).c_str(),
                workers->CellToString(r.row, 1).c_str());
  }
  std::printf("\n");

  // 3. Audit the query's scoring function with every paper algorithm.
  LinearScoringFunction scoring(query.description, query.weights);
  FairnessAuditor auditor(&workers.value());
  std::printf("Audit of the query-induced scoring function:\n\n");
  for (const std::string& algorithm : PaperAlgorithmNames()) {
    AuditOptions options;
    options.algorithm = algorithm;
    options.seed = 3;
    StatusOr<AuditResult> result = auditor.Audit(scoring, options);
    if (!result.ok()) return Fail(result.status());
    std::printf("  %-14s unfairness %.3f  partitions %zu  (%.3f s)\n",
                algorithm.c_str(), result->unfairness,
                result->partitions.size(), result->seconds);
  }

  // 4. Detail of the balanced audit.
  AuditOptions options;
  options.algorithm = "balanced";
  StatusOr<AuditResult> result = auditor.Audit(scoring, options);
  if (!result.ok()) return Fail(result.status());
  ReportOptions report;
  report.max_partitions = 8;
  std::printf("\n%s", FormatAuditReport(*result, report).c_str());

  // 5. Complementary exposure view: EMD compares score *distributions*;
  //    exposure measures who is actually seen at the top of the list.
  StatusOr<std::vector<RankedWorker>> full = engine.Rank(query);
  if (!full.ok()) return Fail(full.status());
  StatusOr<std::vector<ExposureReport>> exposures =
      ComputeAllExposures(*workers, *full);
  if (!exposures.ok()) return Fail(exposures.status());
  std::printf("\nExposure gaps per protected attribute:\n");
  for (const ExposureReport& e : *exposures) {
    std::printf("  %-16s gap %.4f  treatment disparity %.4f\n",
                e.attribute.c_str(), e.exposure_gap, e.treatment_disparity);
  }
  return 0;
}
