// Repair demo (paper future work: "repairing bias in the context of
// ranking"): audit the discriminatory f7, repair the scores on the audited
// partitioning with each strategy, and show the before/after rankings and
// the fairness/utility trade-off.

#include <algorithm>
#include <cstdio>

#include "fairness/auditor.h"
#include "fairness/report.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/ranking.h"
#include "repair/repair.h"

namespace {

int Fail(const fairrank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintTop(const fairrank::Table& workers,
              const std::vector<fairrank::RankedWorker>& ranking, size_t k) {
  for (size_t i = 0; i < k && i < ranking.size(); ++i) {
    std::printf("  #%zu worker %-4zu score %.3f  (%s, %s)\n", i + 1,
                ranking[i].row, ranking[i].score,
                workers.CellToString(ranking[i].row, 0).c_str(),
                workers.CellToString(ranking[i].row, 1).c_str());
  }
}

}  // namespace

int main() {
  using namespace fairrank;

  GeneratorOptions gen;
  gen.num_workers = 1500;
  gen.seed = 29;
  StatusOr<Table> workers = GenerateWorkers(gen);
  if (!workers.ok()) return Fail(workers.status());

  auto f7 = MakeF7(41);
  StatusOr<std::vector<double>> scores = f7->ScoreAll(*workers);
  if (!scores.ok()) return Fail(scores.status());

  // Audit: find the most unfair partitioning under f7.
  FairnessAuditor auditor(&workers.value());
  AuditOptions options;
  options.algorithm = "balanced";
  StatusOr<AuditResult> audit = auditor.Audit(*f7, options);
  if (!audit.ok()) return Fail(audit.status());
  std::printf("%s\n", FormatAuditReport(*audit).c_str());

  // Original top-10 under f7 is dominated by the favored groups.
  RankingEngine engine(&workers.value());
  StatusOr<std::vector<RankedWorker>> original = engine.Rank(*f7);
  if (!original.ok()) return Fail(original.status());
  std::printf("Original top 10 (f7):\n");
  PrintTop(*workers, *original, 10);

  // Repair with each strategy.
  std::vector<std::unique_ptr<RepairStrategy>> strategies;
  strategies.push_back(MakeQuantileRepair());
  strategies.push_back(MakeAffineRepair());
  strategies.push_back(MakeInterpolationRepair(0.5));
  for (const auto& strategy : strategies) {
    StatusOr<RepairEvaluation> evaluation =
        EvaluateRepair(*workers, audit->partitioning, *scores, *strategy,
                       EvaluatorOptions());
    if (!evaluation.ok()) return Fail(evaluation.status());
    std::printf(
        "\nrepair=%s: unfairness %.3f -> %.3f, mean |delta| %.3f, "
        "rank correlation %.3f\n",
        strategy->Name().c_str(), evaluation->unfairness_before,
        evaluation->unfairness_after, evaluation->mean_score_change,
        evaluation->rank_correlation);
    if (strategy->Name() == "quantile") {
      // Show the repaired top-10: demographics now mix.
      std::vector<RankedWorker> repaired(workers->num_rows());
      for (size_t i = 0; i < repaired.size(); ++i) {
        repaired[i] = {i, evaluation->repaired_scores[i]};
      }
      std::stable_sort(repaired.begin(), repaired.end(),
                       [](const RankedWorker& a, const RankedWorker& b) {
                         return a.score > b.score;
                       });
      std::printf("Repaired top 10 (quantile):\n");
      PrintTop(*workers, repaired, 10);
    }
  }
  return 0;
}
