// Qualitative experiment (paper, Table 3): audit the four scoring functions
// that are unfair by design — f6 (anti-female), f7 (gender x country), f8
// (female x country), f9 (ethnicity x language x birth) — and show that the
// balanced algorithm recovers exactly the attributes each function was
// designed to discriminate on.

#include <cstdio>

#include "fairness/auditor.h"
#include "fairness/report.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"

namespace {

int Fail(const fairrank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace fairrank;

  GeneratorOptions gen;
  gen.num_workers = 3000;
  gen.seed = 19;
  StatusOr<Table> workers = GenerateWorkers(gen);
  if (!workers.ok()) return Fail(workers.status());

  FairnessAuditor auditor(&workers.value());
  for (const auto& fn : MakePaperBiasedFunctions(/*seed=*/5)) {
    AuditOptions options;
    options.algorithm = "balanced";
    StatusOr<AuditResult> result = auditor.Audit(*fn, options);
    if (!result.ok()) return Fail(result.status());

    ReportOptions report;
    report.max_partitions = 6;
    std::printf("%s", FormatAuditReport(*result, report).c_str());

    // Compare against a fair control: the same audit under f1.
    std::printf("\n");
  }

  // Control: a random linear function audited the same way shows far lower
  // unfairness.
  auto control = MakeAlphaFunction("f1 (alpha=0.5), fair control", 0.5);
  AuditOptions options;
  options.algorithm = "balanced";
  StatusOr<AuditResult> result = auditor.Audit(*control, options);
  if (!result.ok()) return Fail(result.status());
  ReportOptions report;
  report.max_partitions = 6;
  std::printf("%s", FormatAuditReport(*result, report).c_str());
  return 0;
}
