// External-data audit: the paper's future work is auditing real platforms
// (Qapa, TaskRabbit). This example shows that path with the CSV pipeline:
// it writes a demo CSV (or accepts yours), declares the schema, reads the
// file, and audits the scores it carries.
//
// Usage: csv_audit [workers.csv]
// The file must have columns Gender, Country, YearOfBirth, Language,
// Ethnicity, YearsExperience, LanguageTest, ApprovalRate (extra columns are
// ignored). Without an argument a demo file is generated first.

#include <cstdio>
#include <string>

#include "common/str_util.h"
#include "data/csv.h"
#include "fairness/auditor.h"
#include "fairness/report.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace {

int Fail(const fairrank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fairrank;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // No file supplied: generate a demo population and write it out.
    path = "/tmp/fairrank_demo_workers.csv";
    GeneratorOptions gen;
    gen.num_workers = 1000;
    gen.seed = 23;
    StatusOr<Table> demo = GenerateWorkers(gen);
    if (!demo.ok()) return Fail(demo.status());
    Status written = WriteCsvFile(path, *demo);
    if (!written.ok()) return Fail(written);
    std::printf("No input given; wrote a demo population to %s\n\n",
                path.c_str());
  }

  StatusOr<Schema> schema = MakePaperWorkerSchema();
  if (!schema.ok()) return Fail(schema.status());
  StatusOr<Table> workers = ReadCsvFile(path, *schema);
  if (!workers.ok()) return Fail(workers.status());
  std::printf("Read %zu workers from %s\nSchema:\n%s\n", workers->num_rows(),
              path.c_str(), workers->schema().ToString().c_str());

  FairnessAuditor auditor(&workers.value());
  for (double alpha : {0.5, 1.0, 0.0}) {
    auto fn = MakeAlphaFunction(
        "alpha=" + FormatDouble(alpha, 1) + " qualification", alpha);
    AuditOptions options;
    options.algorithm = "unbalanced";
    StatusOr<AuditResult> result = auditor.Audit(*fn, options);
    if (!result.ok()) return Fail(result.status());
    ReportOptions report;
    report.max_partitions = 5;
    std::printf("%s\n", FormatAuditReport(*result, report).c_str());
  }
  return 0;
}
