// Quickstart: audit a scoring function on the paper's Figure 1 toy example.
//
// Builds the 10-worker toy table, runs the exhaustive optimum plus the two
// heuristics, and prints the partitionings they find. The expected optimum
// is {Male-English, Male-Indian, Male-Other, Female}.

#include <cstdio>
#include <string>

#include "fairness/auditor.h"
#include "fairness/report.h"
#include "marketplace/worker.h"

namespace {

int Fail(const fairrank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  fairrank::StatusOr<fairrank::Table> table = fairrank::MakeToyTable();
  if (!table.ok()) return Fail(table.status());

  // The toy table carries the score as its observed attribute.
  fairrank::LinearScoringFunction score("toy score", {{"Score", 1.0}});

  fairrank::FairnessAuditor auditor(&table.value());
  for (const std::string& algorithm :
       {std::string("exhaustive"), std::string("balanced"),
        std::string("unbalanced")}) {
    fairrank::AuditOptions options;
    options.algorithm = algorithm;
    fairrank::StatusOr<fairrank::AuditResult> result =
        auditor.Audit(score, options);
    if (!result.ok()) return Fail(result.status());
    fairrank::ReportOptions report;
    report.include_histograms = false;
    std::printf("%s\n", FormatAuditReport(*result, report).c_str());
  }
  return 0;
}
