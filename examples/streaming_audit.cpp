// Streaming audit: score streams too large or too transient to buffer are
// summarized per demographic group with Greenwald-Khanna quantile sketches,
// and group unfairness is read off as the Wasserstein-1 distance between
// sketched distributions — no per-worker storage.
//
// The stream here replays a large simulated population through f6 (the
// paper's anti-female function); the sketch audit recovers the ~0.8 exact
// sample-based EMD while storing a few hundred tuples per group.

#include <cstdio>
#include <string>
#include <vector>

#include "fairness/auditor.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/worker.h"
#include "stats/emd.h"
#include "stats/quantile_sketch.h"

namespace {

int Fail(const fairrank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace fairrank;

  // A population too big to want in memory per-score (here: 200k workers).
  GeneratorOptions gen;
  gen.num_workers = 200000;
  gen.seed = 37;
  StatusOr<Table> workers = GenerateWorkers(gen);
  if (!workers.ok()) return Fail(workers.status());
  auto f6 = MakeF6(53);
  StatusOr<std::vector<double>> scores = f6->ScoreAll(*workers);
  if (!scores.ok()) return Fail(scores.status());

  const size_t gender_col =
      workers->schema().FindIndex(worker_attrs::kGender).value();

  // Stream: one GK sketch per gender; also keep exact buffers purely to
  // report the approximation error (a real deployment would not).
  const double kEpsilon = 0.005;
  GkSketch male_sketch(kEpsilon);
  GkSketch female_sketch(kEpsilon);
  std::vector<double> male_exact;
  std::vector<double> female_exact;
  for (size_t row = 0; row < workers->num_rows(); ++row) {
    double score = (*scores)[row];
    if (workers->column(gender_col).CodeAt(row) == 0) {
      male_sketch.Insert(score);
      male_exact.push_back(score);
    } else {
      female_sketch.Insert(score);
      female_exact.push_back(score);
    }
  }

  StatusOr<double> sketched = EmdFromSketches(male_sketch, female_sketch);
  if (!sketched.ok()) return Fail(sketched.status());
  StatusOr<double> exact = EmdSamples1D(male_exact, female_exact);
  if (!exact.ok()) return Fail(exact.status());

  std::printf("streamed %zu scores under %s\n", scores->size(),
              f6->Name().c_str());
  std::printf("  male sketch:   %zu observations in %zu tuples\n",
              male_sketch.count(), male_sketch.tuples());
  std::printf("  female sketch: %zu observations in %zu tuples\n",
              female_sketch.count(), female_sketch.tuples());
  std::printf("gender unfairness (Wasserstein-1):\n");
  std::printf("  sketched: %.5f\n", *sketched);
  std::printf("  exact:    %.5f\n", *exact);
  std::printf("  |error|:  %.5f (epsilon %.3f)\n",
              std::abs(*sketched - *exact), kEpsilon);
  std::printf(
      "\nMemory: %zu vs %zu stored values (%.1fx compression).\n",
      male_sketch.tuples() + female_sketch.tuples(), scores->size(),
      static_cast<double>(scores->size()) /
          static_cast<double>(male_sketch.tuples() + female_sketch.tuples()));

  // Streaming deployments share the clock with ingestion, so the periodic
  // *full* audit runs under a deadline and node budget. When the limits
  // trip, the auditor degrades to the best partitioning found so far and
  // flags the result truncated — the tick never blocks.
  AuditOptions audit_options;
  audit_options.algorithm = "balanced";
  audit_options.limits.timeout_ms = 250;
  audit_options.limits.max_nodes = 10000;
  FairnessAuditor auditor(&workers.value());
  StatusOr<AuditResult> audit = auditor.Audit(*f6, audit_options);
  if (!audit.ok()) return Fail(audit.status());
  std::printf(
      "\nbounded full audit (250 ms / 10k nodes): unfairness %.4f over %zu "
      "partitions%s\n",
      audit->unfairness, audit->partitions.size(),
      audit->truncated ? " [truncated: best partitioning found in time]"
                       : "");
  return 0;
}
